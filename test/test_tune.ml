(* Property tests of the schedule autotuner (lib/tune).

   The three contracts the tuner must never break, soaked over random
   structured graphs x devices x rung shapes:

   1. legality — every version the search emits satisfies its device's
      constraints (threads ceiling, register file, shared memory, vec
      alignment); hierarchical pruning means nothing illegal is ever
      even scored, so the soak must find zero violations;
   2. determinism — tuning is a pure function of (graph, device, rungs):
      independently rebuilt and recompiled inputs yield byte-identical
      plans;
   3. never-worse — the serving cost of the tuned version list (first
      guard match, exactly what the runtime selects) is <= the default
      speculative set's cost at every tuned rung. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Nd = Tensor.Nd
module Kernel = Codegen.Kernel
module Cluster = Fusion.Cluster
module Device = Gpusim.Device
module Executable = Runtime.Executable

let devices = [ Device.a10; Device.t4; Device.xeon ]

(* Random structured graph over [b, s, h]: elementwise chains, softmax
   and keep-dim reductions (stitch patterns), broadcasts — the op mix
   that mints Loop, Reduce and Stitch kernels. *)
let build_graph seed : Graph.t * (string * Sym.dim) list =
  let st = Random.State.make [| seed |] in
  let h = 4 * (1 + Random.State.int st 3) in
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh ~name:"b" ~lb:1 ~ub:64 tab in
  let s = Table.fresh ~name:"s" ~lb:1 ~ub:64 tab in
  let x = B.param g ~name:"x" [| b; s; Sym.Static h |] Dtype.F32 in
  let pool = ref [ x ] in
  let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
  let steps = 3 + Random.State.int st 7 in
  for _ = 1 to steps do
    let v =
      match Random.State.int st 6 with
      | 0 -> B.add g (pick ()) (pick ())
      | 1 -> B.mul g (pick ()) (pick ())
      | 2 -> B.tanh g (pick ())
      | 3 -> B.softmax g (pick ())
      | 4 -> B.reduce_lastdim_keep g Op.R_sum (pick ())
      | _ ->
          let c = B.const g (Nd.init [| h |] (fun i -> 0.1 *. float_of_int i.(0))) in
          B.add g (pick ()) (B.broadcast_trailing g c ~out:[| b; s; Sym.Static h |])
    in
    pool := v :: !pool
  done;
  Graph.set_outputs g [ List.hd !pool ];
  (g, [ ("b", b); ("s", s) ])

(* Three rung shapes drawn from the seed, strictly inside the bounds. *)
let rung_shapes seed =
  let st = Random.State.make [| seed + 7919 |] in
  List.init 3 (fun _ -> (1 + Random.State.int st 64, 1 + Random.State.int st 64))

let rungs_for g dims shapes =
  List.map
    (fun (bv, sv) ->
      let env = [ ("b", bv); ("s", sv) ] in
      let bnd =
        Disc.Compiler.binding_of_dims g (List.map (fun (n, v) -> (List.assoc n dims, v)) env)
      in
      { Tune.Search.env; bnd })
    shapes

let compile_and_plan seed device =
  let g, dims = build_graph seed in
  let c = Disc.Compiler.compile g in
  let exe = c.Disc.Compiler.exe in
  let rungs = rungs_for exe.Executable.g dims (rung_shapes seed) in
  (exe, rungs, Tune.Search.plan ~device ~rungs exe)

let fused_kernels (exe : Executable.t) =
  List.filter_map
    (function Executable.Fused k -> Some k | Executable.Lib _ -> None)
    exe.Executable.items

let device_of_seed seed = List.nth devices (abs seed mod List.length devices)

(* -- property 1: legality -------------------------------------------------- *)

let prop_legal =
  QCheck.Test.make ~name:"every emitted schedule satisfies device constraints" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let device = device_of_seed seed in
      let exe, _, plan = compile_and_plan seed device in
      List.for_all
        (fun (k : Kernel.t) ->
          match Tune.Plan.find plan k.Kernel.name with
          | None -> true
          | Some e ->
              List.for_all
                (fun (v : Kernel.version) ->
                  let kind = k.Kernel.cluster.Cluster.kind in
                  Tune.Space.validate device ~has_reduce:k.Kernel.has_reduce ~kind v
                  &&
                  match v.Kernel.sched with
                  | None -> true
                  | Some sc ->
                      sc.Kernel.s_threads <= device.Device.max_threads_per_block
                      && sc.Kernel.s_smem_bytes <= device.Device.shared_mem_per_block
                      && ((not v.Kernel.vectorized) || sc.Kernel.s_tile mod 4 = 0))
                e.Tune.Plan.versions)
        (fused_kernels exe))

(* -- property 2: determinism ----------------------------------------------- *)

let prop_deterministic =
  QCheck.Test.make ~name:"tuning is deterministic (rebuild + recompile => same plan)"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let device = device_of_seed seed in
      let _, _, plan1 = compile_and_plan seed device in
      let _, _, plan2 = compile_and_plan seed device in
      Tune.Plan.digest plan1 = Tune.Plan.digest plan2)

(* -- property 3: tuned cost <= default cost at every rung ------------------- *)

let served_us g device bnd (k : Kernel.t) versions =
  let k' = { k with Kernel.versions } in
  Gpusim.Cost.kernel_time_us device
    (Kernel.work_of g bnd k' (Kernel.launch_for g device bnd k'))

let prop_never_worse =
  QCheck.Test.make ~name:"tuned serve cost <= default speculative set at every rung"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let device = device_of_seed seed in
      let exe, rungs, plan = compile_and_plan seed device in
      let g = exe.Executable.g in
      List.for_all
        (fun (k : Kernel.t) ->
          match Tune.Plan.find plan k.Kernel.name with
          | None -> true
          | Some e ->
              List.for_all
                (fun (r : Tune.Search.rung) ->
                  served_us g device r.Tune.Search.bnd k e.Tune.Plan.versions
                  <= served_us g device r.Tune.Search.bnd k k.Kernel.versions +. 1e-6)
                rungs)
        (fused_kernels exe))

(* -- deterministic space unit tests ----------------------------------------- *)

let test_enumerate_all_legal () =
  List.iter
    (fun device ->
      List.iter
        (fun kind ->
          List.iter
            (fun has_reduce ->
              let pts = Tune.Space.enumerate device ~has_reduce ~kind in
              Alcotest.(check bool)
                (Printf.sprintf "%s space non-empty" device.Device.name)
                true (pts <> []);
              List.iter
                (fun p ->
                  Alcotest.(check bool) "enumerated point is legal" true
                    (Tune.Space.legal device ~has_reduce ~kind p))
                pts)
            [ false; true ])
        [ Cluster.Single; Cluster.Loop; Cluster.Input; Cluster.Stitch ])
    devices

let test_default_point_in_space () =
  (* the compiler's default schedule (256 threads x tile 4) must be a
     point of the space on the GPUs, so tuning can never lose to it *)
  let default p = p.Tune.Space.p_threads = 256 && p.Tune.Space.p_tile = 4 in
  List.iter
    (fun device ->
      Alcotest.(check bool)
        (device.Device.name ^ " space contains t256.c4")
        true
        (List.exists default
           (Tune.Space.enumerate device ~has_reduce:false ~kind:Cluster.Loop)))
    [ Device.a10; Device.t4 ]

let test_thread_ceiling_pruned () =
  (* xeon's 256-wide chunk ceiling prunes every wider point *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "xeon point within thread ceiling" true
        (p.Tune.Space.p_threads <= 256))
    (Tune.Space.enumerate Device.xeon ~has_reduce:true ~kind:Cluster.Loop)

let test_smem_prunes_stitch () =
  (* double-buffered stitch staging at t1024.c8 needs 64 KB > the GPUs'
     48 KB: the point must not survive enumeration for Stitch kernels *)
  let big p = p.Tune.Space.p_threads = 1024 && p.Tune.Space.p_tile = 8 in
  Alcotest.(check bool) "t1024.c8 stitch pruned on A10" false
    (List.exists big (Tune.Space.enumerate Device.a10 ~has_reduce:false ~kind:Cluster.Stitch));
  Alcotest.(check bool) "t1024.c8 loop survives on A10" true
    (List.exists big (Tune.Space.enumerate Device.a10 ~has_reduce:false ~kind:Cluster.Loop))

let test_vec_alignment () =
  List.iter
    (fun p ->
      if p.Tune.Space.p_vectorized then
        Alcotest.(check int) "vectorized tile is float4-aligned" 0
          (p.Tune.Space.p_tile mod 4))
    (Tune.Space.enumerate Device.a10 ~has_reduce:true ~kind:Cluster.Loop)

let test_validate_rejects_forged () =
  (* a hand-forged version violating the thread ceiling must not validate *)
  let p =
    {
      Tune.Space.p_threads = 1024;
      p_tile = 1;
      p_vectorized = false;
      p_tree = false;
      p_persistent = false;
    }
  in
  let v = Tune.Space.version_of ~kind:Cluster.Loop p in
  Alcotest.(check bool) "1024-thread version invalid on xeon" false
    (Tune.Space.validate Device.xeon ~has_reduce:false ~kind:Cluster.Loop v);
  Alcotest.(check bool) "same version valid on A10" true
    (Tune.Space.validate Device.a10 ~has_reduce:false ~kind:Cluster.Loop v)

let test_plan_apply_immutable () =
  let device = Device.a10 in
  let exe, rungs, plan = compile_and_plan 12345 device in
  let before = List.map (fun (k : Kernel.t) -> k.Kernel.versions) (fused_kernels exe) in
  let exe' = Tune.Plan.apply plan exe in
  let after = List.map (fun (k : Kernel.t) -> k.Kernel.versions) (fused_kernels exe) in
  Alcotest.(check bool) "input executable unchanged by apply" true (before = after);
  Alcotest.(check bool) "rewritten executable differs" true
    (List.exists2
       (fun (a : Kernel.t) (b : Kernel.t) -> a.Kernel.versions <> b.Kernel.versions)
       (fused_kernels exe) (fused_kernels exe'));
  ignore rungs

let () =
  Alcotest.run "tune"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_legal; prop_deterministic; prop_never_worse ] );
      ( "space",
        [
          Alcotest.test_case "enumerate emits only legal points" `Quick
            test_enumerate_all_legal;
          Alcotest.test_case "default schedule is in the space" `Quick
            test_default_point_in_space;
          Alcotest.test_case "thread ceiling prunes (xeon)" `Quick
            test_thread_ceiling_pruned;
          Alcotest.test_case "shared memory prunes stitch staging" `Quick
            test_smem_prunes_stitch;
          Alcotest.test_case "vectorized tiles are float4-aligned" `Quick
            test_vec_alignment;
          Alcotest.test_case "validate rejects forged versions" `Quick
            test_validate_rejects_forged;
        ] );
      ( "plan",
        [ Alcotest.test_case "apply is immutable" `Quick test_plan_apply_immutable ] );
    ]
