(* Shape explorer: a guided tour of the paper's core machinery — the
   cross-level symbolic shape representation. Builds one attention block
   and shows (a) the symbolic IR, (b) what the constraint system proves,
   (c) the fusion decisions those proofs unlock, (d) runtime shape
   inference through reshapes and convolutions.

     dune exec examples/shape_explorer.exe *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module B = Ir.Builder
module Planner = Fusion.Planner
module Cluster = Fusion.Cluster

let section s = Printf.printf "\n--- %s ---\n" s

let () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh ~name:"batch" ~lb:1 ~ub:64 tab in
  let s = Table.fresh ~name:"seq" ~lb:1 ~ub:512 ~likely:[ 64; 128 ] tab in
  let x = B.param g ~name:"x" [| b; s; Sym.Static 64 |] Tensor.Dtype.F32 in

  (* head split: [b, s, 64] -> [b, s, 4, 16] -> [b, 4, s, 16] *)
  let heads = B.reshape g x [| b; s; Sym.Static 4; Sym.Static 16 |] in
  let q = B.transpose g heads [| 0; 2; 1; 3 |] in
  let scores = B.dot g q (B.transpose g q [| 0; 1; 3; 2 |]) in
  let probs = B.softmax g (B.mulf g scores 0.25) in
  Graph.set_outputs g [ probs ];

  section "symbolic IR (shapes carry symbols, not values)";
  print_string (Ir.Printer.to_string g);

  section "symbol table";
  Format.printf "%a@." Table.pp tab;

  section "what the constraint system proves";
  let show q result = Printf.printf "  %-58s %b\n" q result in
  show "numel [b,s,64] = numel [b,s,4,16] (product equality)"
    (Table.numel_equal tab
       [| b; s; Sym.Static 64 |]
       [| b; s; Sym.Static 4; Sym.Static 16 |]);
  show "numel [b,s,64] = numel [b,s,65]"
    (Table.numel_equal tab [| b; s; Sym.Static 64 |] [| b; s; Sym.Static 65 |]);
  Printf.printf "  %-58s %d..%s\n" "range of seq (distribution constraint)"
    (Table.lower_bound tab s)
    (match Table.upper_bound tab s with Some u -> string_of_int u | None -> "?");
  Printf.printf "  %-58s %s\n" "likely values of seq"
    (String.concat "," (List.map string_of_int (Table.likely_values tab s)));

  section "fusion decisions unlocked by those proofs";
  let plan = Planner.plan g in
  print_string (Cluster.to_string plan);
  let blind = Planner.plan ~config:Planner.static_only_config g in
  Printf.printf "kernels with shape constraints: %d; value-blind compiler: %d\n"
    (Cluster.num_kernels plan) (Cluster.num_kernels blind);

  section "runtime shape inference (one compile, any shape)";
  List.iter
    (fun (bv, sv) ->
      let bnd = Table.empty_binding () in
      Table.bind_dim tab bnd b bv;
      Table.bind_dim tab bnd s sv;
      let out = Table.eval_shape tab bnd (Graph.inst g probs).Graph.shape in
      Printf.printf "  batch=%d seq=%d  ->  probs: %s\n" bv sv (Tensor.Shape.to_string out))
    [ (1, 7); (8, 128); (64, 512) ];

  section "derived dims: a stride-2 conv under a dynamic width";
  let g2 = Graph.create () in
  let tab2 = Graph.symtab g2 in
  let w = Table.fresh ~name:"width" ~lb:8 ~ub:512 tab2 in
  let img = B.param g2 ~name:"img" [| Sym.Static 1; Sym.Static 32; w; Sym.Static 3 |] Tensor.Dtype.F32 in
  let filt = B.param g2 ~name:"filt"
      [| Sym.Static 3; Sym.Static 3; Sym.Static 3; Sym.Static 8 |] Tensor.Dtype.F32 in
  let conv = B.conv2d g2 img filt ~strides:(2, 2) ~padding:(1, 1) in
  let out_w = (Graph.inst g2 conv).Graph.shape.(2) in
  Printf.printf "  conv out width dim: %s (derived from %s)\n" (Sym.dim_to_string out_w)
    (Sym.dim_to_string w);
  List.iter
    (fun wv ->
      let bnd = Table.empty_binding () in
      Table.bind_dim tab2 bnd w wv;
      Printf.printf "  width=%-4d -> out width=%d\n" wv
        (Table.eval_dim_exn tab2 bnd out_w))
    [ 8; 100; 511 ]
