(* Bring-your-own-graph: load a hand-written .disc program, compile it,
   inspect the fusion decisions (with explanations), look at the emitted
   pseudo-CUDA, and run it on real data at several shapes.

     dune exec examples/custom_graph.exe [FILE] *)

module Graph = Ir.Graph
module Nd = Tensor.Nd

let default_file = "examples/graphs/softmax_mlp.disc"

let () =
  let file = if Array.length Sys.argv > 1 then Sys.argv.(1) else default_file in
  let src = In_channel.with_open_text file In_channel.input_all in
  let g = Ir.Parser.parse src in
  Printf.printf "loaded %s: %d instructions\n\n" file (Graph.num_insts g);

  let c = Disc.Compiler.compile g in
  Printf.printf "fusion plan:\n%s\n" (Fusion.Cluster.to_string c.Disc.Compiler.plan);

  (* why is the dot not part of the big fused kernel? ask the compiler *)
  let dot_id =
    Graph.fold g
      (fun acc i -> match i.Graph.op with Ir.Op.Dot -> i.Graph.id | _ -> acc)
      (-1)
  in
  let out_id = List.hd (Graph.outputs g) in
  if dot_id >= 0 then
    Printf.printf "explain %%%d vs %%%d: %s\n\n" dot_id out_id
      (Fusion.Explain.verdict_to_string
         (Fusion.Explain.explain g c.Disc.Compiler.plan ~a:dot_id ~b:out_id));

  Printf.printf "emitted kernels:\n%s\n"
    (Codegen.Emit.emit_program g c.Disc.Compiler.plan Codegen.Kernel.default_config);

  (* run on real data: inputs are synthesized for each parameter shape *)
  List.iter
    (fun batch ->
      let tab = Graph.symtab g in
      let bnd = Symshape.Table.empty_binding () in
      let inputs =
        List.map
          (fun (pid, _) ->
            let inst = Graph.inst g pid in
            (* bind the first unbound symbolic dim to [batch] *)
            Array.iter
              (fun d ->
                match Symshape.Table.eval_dim tab bnd d with
                | None -> Symshape.Table.bind_dim tab bnd d batch
                | Some _ -> ())
              inst.Graph.shape;
            let shape = Symshape.Table.eval_shape tab bnd inst.Graph.shape in
            Nd.init ~dtype:inst.Graph.dtype shape (fun idx ->
                Float.sin (float_of_int (Tensor.Shape.linear_of_index shape idx))))
          (Graph.parameters g)
      in
      let outs, profile = Disc.Compiler.run c inputs in
      Printf.printf "batch=%-3d -> %s  (%s)\n" batch
        (String.concat "; "
           (List.map (fun o -> Tensor.Shape.to_string (Nd.shape o)) outs))
        (Runtime.Profile.to_string profile))
    [ 2; 16; 100 ]
