(* Recommendation-serving scenario: a DIEN-style CTR model scored for
   large, bursty batches with dynamic behaviour-history lengths. This is
   the regime where per-operator dispatch dominates and fusion pays the
   most — the example prints the fusion plan to show why.

     dune exec examples/recsys_serving.exe *)

module E = Baselines.Executor
module Systems = Baselines.Systems
module Suite = Models.Suite
module Cluster = Fusion.Cluster
module Planner = Fusion.Planner

let () =
  let entry = Suite.find "dien" in
  let device = Gpusim.Device.t4 in
  (* show what fusion does to this graph *)
  let built = entry.Suite.build () in
  ignore (Ir.Passes.run_all built.Models.Common.graph);
  let plan = Planner.plan built.Models.Common.graph in
  let unfused = Planner.plan ~config:Planner.no_fusion_config built.Models.Common.graph in
  Printf.printf "DIEN: %d ops -> %d kernels unfused, %d kernels with BladeDISC fusion\n"
    (Ir.Graph.num_insts built.Models.Common.graph)
    (Cluster.num_kernels unfused) (Cluster.num_kernels plan);
  Printf.printf "fused plan:\n%s\n" (Cluster.to_string plan);
  (* score traffic bursts on the T4 *)
  Printf.printf "%-11s %s\n" "system"
    (String.concat " "
       (List.map
          (fun (b, h) -> Printf.sprintf "%14s" (Printf.sprintf "b=%d,hist=%d" b h))
          [ (32, 10); (128, 25); (512, 60); (1024, 100) ]));
  List.iter
    (fun name ->
      let ex = Systems.make name (entry.Suite.build ()) in
      let cells =
        List.map
          (fun (b, h) ->
            let r = ex.E.run ~device [ ("batch", b); ("hist", h) ] in
            Printf.sprintf "%12.0fus" r.E.latency_us)
          [ (32, 10); (128, 25); (512, 60); (1024, 100) ]
      in
      Printf.printf "%-11s %s\n" name (String.concat "  " cells))
    [ "bladedisc"; "pytorch"; "torchscript"; "tensorrt" ];
  (* throughput at the largest burst *)
  let qps name =
    let ex = Systems.make name (entry.Suite.build ()) in
    let r = ex.E.run ~device [ ("batch", 1024); ("hist", 100) ] in
    1024.0 /. (r.E.latency_us /. 1e6)
  in
  Printf.printf "\nthroughput at batch=1024: bladedisc %.0f items/s vs pytorch %.0f items/s\n"
    (qps "bladedisc") (qps "pytorch")
