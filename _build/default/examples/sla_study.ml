(* SLA study: a BERT endpoint with dynamic batching under a Poisson
   request stream. Dynamic batching means every formed batch has a
   different (batch, max-seq) shape — exactly the workload that defeats
   static compilers. Compare tail latency and compile stalls across
   systems and load levels.

     dune exec examples/sla_study.exe *)

module Q = Workloads.Queueing
module T = Workloads.Trace
module E = Baselines.Executor
module Systems = Baselines.Systems
module Suite = Models.Suite

let () =
  let entry = Suite.find "bert" in
  let device = Gpusim.Device.a10 in
  let policy = { Q.max_batch = 8; max_wait_us = 2000.0 } in
  Printf.printf
    "BERT endpoint, dynamic batching (max_batch=%d, max_wait=%.0fus), Poisson traffic,\n\
     per-request seq drawn from a bimodal query/document mix; simulated %s.\n\n"
    policy.Q.max_batch policy.Q.max_wait_us device.Gpusim.Device.name;
  Printf.printf "%-9s %-11s %9s %9s %9s %11s %12s\n" "load" "system" "p50(ms)" "p95(ms)"
    "p99(ms)" "mean-batch" "stalls>0.1s";
  List.iter
    (fun qps ->
      let arrivals =
        Q.generate_arrivals ~seed:11 ~qps ~n:400 ~dims:[ ("seq", T.Bimodal (24, 160)) ]
      in
      List.iter
        (fun name ->
          let ex = Systems.make name (entry.Suite.build ()) in
          (* deploy-time warm-up: every system compiles for the first
             request shape before traffic starts; per-signature systems
             (XLA, TVM) still stall in-band on every *new* signature *)
          ignore (ex.E.run ~device [ ("batch", 1); ("seq", 32) ]);
          let stalls = ref 0 in
          let service env =
            let r = ex.E.run ~device env in
            if r.E.compile_ms > 100.0 then incr stalls;
            (* a compile stall blocks the serving thread *)
            r.E.latency_us +. (r.E.compile_ms *. 1000.0)
          in
          let o = Q.simulate ~arrivals ~policy ~batch_dim:"batch" ~service in
          Printf.printf "%-9s %-11s %9.1f %9.1f %9.1f %11.1f %12d\n"
            (Printf.sprintf "%.0f qps" qps)
            name
            (Q.percentile o.Q.latencies_us 0.5 /. 1000.0)
            (Q.percentile o.Q.latencies_us 0.95 /. 1000.0)
            (Q.percentile o.Q.latencies_us 0.99 /. 1000.0)
            o.Q.mean_batch !stalls)
        [ "bladedisc"; "onnxrt"; "xla"; "pytorch" ];
      print_newline ())
    [ 50.0; 200.0 ];
  Printf.printf
    "(XLA's recompile stalls happen in-band: one new sequence-length bucket stalls\n\
    \ the whole queue, which is how dynamic shapes hurt real serving tails.)\n"
