(* Quickstart: build a small dynamic-shape program with the IR builder,
   compile it once with BladeDISC, and run it at several input shapes.

     dune exec examples/quickstart.exe *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module B = Ir.Builder
module Nd = Tensor.Nd

let () =
  (* 1. A program over a dynamic batch of 8-float feature rows:
        softmax(gelu(x W + b)) — W: [8, 4]. *)
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let batch = Table.fresh ~name:"batch" ~lb:1 ~ub:1024 tab in
  let x = B.param g ~name:"x" [| batch; Sym.Static 8 |] Tensor.Dtype.F32 in
  let w = B.const g (Nd.init [| 8; 4 |] (fun i -> Float.sin (float_of_int ((i.(0) * 4) + i.(1))))) in
  let b = B.const g (Nd.create [| 4 |] 0.1) in
  let h = B.dot g x w in
  let h = B.add g h (B.broadcast_trailing g b ~out:(Graph.inst g h).Graph.shape) in
  let y = B.softmax g (B.gelu g h) in
  Graph.set_outputs g [ y ];

  Printf.printf "=== IR (note the symbolic dim s0 = batch) ===\n%s\n" (Ir.Printer.to_string g);

  (* 2. Compile once. The artifact serves every batch size. *)
  let compiled = Disc.Compiler.compile g in
  Printf.printf "=== fusion plan ===\n%s\n"
    (Fusion.Cluster.to_string compiled.Disc.Compiler.plan);

  (* 3. Run at several shapes — no recompilation between them. *)
  List.iter
    (fun bsz ->
      let input =
        Nd.init [| bsz; 8 |] (fun i -> float_of_int ((i.(0) * 8) + i.(1)) /. 10.0)
      in
      let outs, profile = Disc.Compiler.run compiled [ input ] in
      let out = List.hd outs in
      Printf.printf "batch=%-4d out_shape=%s first_row=%s  [%s]\n" bsz
        (Tensor.Shape.to_string (Nd.shape out))
        (String.concat ", "
           (List.init 4 (fun j -> Printf.sprintf "%.3f" (Nd.get out [| 0; j |]))))
        (Runtime.Profile.to_string profile))
    [ 1; 7; 64; 513 ];

  (* 4. The same artifact can also be *simulated* at any shape without
        tensor data — that is how the benchmarks run at paper scale. *)
  let t = Disc.Compiler.simulated_latency_us compiled [ (batch, 100000) ] in
  Printf.printf "\nsimulated latency at batch=100000: %.1f us (A10 model)\n" t
