examples/recsys_serving.mli:
