examples/shape_explorer.ml: Array Format Fusion Ir List Printf String Symshape Tensor
