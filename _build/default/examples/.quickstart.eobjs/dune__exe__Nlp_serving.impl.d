examples/nlp_serving.ml: Array Baselines Gpusim List Models Printf String Workloads
