examples/sla_study.ml: Baselines Gpusim List Models Printf Workloads
