examples/quickstart.ml: Array Disc Float Fusion Ir List Printf Runtime String Symshape Tensor
