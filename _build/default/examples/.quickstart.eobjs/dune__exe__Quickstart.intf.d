examples/quickstart.mli:
