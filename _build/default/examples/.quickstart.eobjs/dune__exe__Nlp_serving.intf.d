examples/nlp_serving.mli:
