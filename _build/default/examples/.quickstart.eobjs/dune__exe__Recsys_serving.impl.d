examples/recsys_serving.ml: Baselines Fusion Gpusim Ir List Models Printf String
