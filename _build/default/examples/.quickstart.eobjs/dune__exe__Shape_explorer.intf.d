examples/shape_explorer.mli:
