examples/sla_study.mli:
