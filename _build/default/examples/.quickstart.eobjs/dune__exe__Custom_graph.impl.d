examples/custom_graph.ml: Array Codegen Disc Float Fusion In_channel Ir List Printf Runtime String Symshape Sys Tensor
