(* NLP serving scenario (the paper's motivating workload): BERT-base
   behind an endpoint whose requests have wildly varying batch sizes and
   sequence lengths. Serve a 200-request trace with BladeDISC, PyTorch
   eager and XLA-with-bucketing and compare latency distributions and
   compilation stalls.

     dune exec examples/nlp_serving.exe *)

module E = Baselines.Executor
module Systems = Baselines.Systems
module Suite = Models.Suite
module Trace = Workloads.Trace

let percentile xs p =
  let arr = Array.of_list xs in
  Array.sort compare arr;
  arr.(min (Array.length arr - 1) (int_of_float (p *. float_of_int (Array.length arr))))

let () =
  let entry = Suite.find "bert" in
  let device = Gpusim.Device.a10 in
  let trace = Trace.environments ~seed:2026 (Trace.serving_mix entry) ~n:200 in
  Printf.printf "serving 200 BERT requests on simulated %s\n" device.Gpusim.Device.name;
  Printf.printf "request shape examples: %s ...\n\n"
    (String.concat "  "
       (List.map
          (fun env ->
            String.concat "," (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) env))
          (List.filteri (fun i _ -> i < 4) trace)));
  Printf.printf "%-11s %10s %10s %10s %14s %16s\n" "system" "p50(us)" "p95(us)" "max(us)"
    "stalls>100ms" "total-compile(s)";
  List.iter
    (fun name ->
      let ex = Systems.make name (entry.Suite.build ()) in
      let lats = ref [] and stalls = ref 0 in
      List.iter
        (fun env ->
          let r = ex.E.run ~device env in
          if r.E.compile_ms > 100.0 then incr stalls;
          lats := r.E.latency_us :: !lats)
        trace;
      Printf.printf "%-11s %10.0f %10.0f %10.0f %14d %16.1f\n" name
        (percentile !lats 0.5) (percentile !lats 0.95) (percentile !lats 0.999)
        !stalls
        (ex.E.total_compile_ms () /. 1000.0))
    [ "bladedisc"; "pytorch"; "xla"; "onnxrt" ];
  Printf.printf
    "\nBladeDISC compiles once up front; XLA stalls on every new sequence-length\n\
     bucket, which in a production trace keeps happening for hours.\n"
