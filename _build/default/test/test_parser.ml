(* Tests for the textual IR parser: hand-written programs, error cases,
   and print -> parse round trips preserving semantics. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module B = Ir.Builder
module Nd = Tensor.Nd
module Dtype = Tensor.Dtype

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_both g1 g2 inputs =
  let a = Ir.Interp.run g1 inputs and b = Ir.Interp.run g2 inputs in
  List.for_all2 (Nd.equal_approx ~eps:1e-6) a b

let test_hand_written () =
  let src =
    {|graph {
        sym s0 lb=1 ub=512 likely=64
        %0 : f32[s0x8] = parameter(0, "x")()
        %1 : f32[] = constant(f32[]{2})()
        %2 : f32[s0x8] = mul(%0, %1)
        %3 : f32[s0x8] = exp(%2)
        %4 : f32[s0] = reduce.sum(dims=[1])(%3)
        return %4
      }|}
  in
  let g = Ir.Parser.parse src in
  check_int "instructions" 5 (Graph.num_insts g);
  let input = Nd.init [| 3; 8 |] (fun i -> float_of_int (i.(0) + i.(1)) /. 10.0) in
  match Ir.Interp.run g [ input ] with
  | [ out ] ->
      Alcotest.(check (array int)) "shape" [| 3 |] (Nd.shape out);
      let expect =
        Tensor.Ops_ref.reduce Tensor.Ops_ref.R_sum
          (Tensor.Ops_ref.exp (Nd.map (fun v -> 2.0 *. v) input))
          ~dims:[ 1 ]
      in
      check_bool "semantics" true (Nd.equal_approx ~eps:1e-6 out expect)
  | _ -> Alcotest.fail "one output"

let test_symbol_constraints_recovered () =
  let src =
    {|graph {
        sym s0 lb=2 ub=128 likely=16,32
        %0 : f32[s0] = parameter(0, "x")()
        %1 : f32[s0] = tanh(%0)
        return %1
      }|}
  in
  let g = Ir.Parser.parse src in
  let tab = Graph.symtab g in
  let d = (Graph.inst g 0).Graph.shape.(0) in
  check_int "lb" 2 (Table.lower_bound tab d);
  Alcotest.(check (option int)) "ub" (Some 128) (Table.upper_bound tab d);
  Alcotest.(check (list int)) "likely" [ 16; 32 ] (Table.likely_values tab d)

let test_shared_symbols_unify () =
  (* two parameters declared with the same textual symbol share one
     runtime symbol: their shapes must agree at run time *)
  let src =
    {|graph {
        %0 : f32[s0] = parameter(0, "x")()
        %1 : f32[s0] = parameter(1, "y")()
        %2 : f32[s0] = add(%0, %1)
        return %2
      }|}
  in
  let g = Ir.Parser.parse src in
  check_bool "conflicting runtime shapes rejected" true
    (try
       ignore (Ir.Interp.run g [ Nd.create [| 2 |] 0.0; Nd.create [| 3 |] 0.0 ]);
       false
     with Table.Inconsistent _ -> true)

let test_errors () =
  let bad msg src =
    check_bool msg true
      (try
         ignore (Ir.Parser.parse src);
         false
       with Ir.Parser.Parse_error _ | Graph.Type_error _ -> true)
  in
  bad "undefined value" {|graph { %1 : f32[2] = exp(%0)  return %1 }|};
  bad "unknown op" {|graph { %0 : f32[2] = parameter(0, "x")() %1 : f32[2] = frobnicate(%0) return %1 }|};
  bad "rank mismatch" {|graph { %0 : f32[2x2] = parameter(0, "x")() %1 : f32[2] = exp(%0) return %1 }|};
  bad "bad constant arity" {|graph { %0 : f32[3] = constant(f32[3]{1, 2})() return %0 }|};
  bad "garbage" {|graph { ??? }|}

(* round-trip: build programmatically, print with symbols, parse, compare *)
let roundtrip_graph build inputs =
  let g1 = build () in
  let text = Ir.Printer.to_string ~with_symbols:true g1 in
  let g2 = Ir.Parser.parse text in
  check_bool "same semantics after round trip" true (run_both g1 g2 inputs);
  (* and printing again is stable *)
  let text2 = Ir.Printer.to_string ~with_symbols:true g2 in
  Alcotest.(check string) "print-parse-print fixpoint" text text2

let test_roundtrip_pointwise () =
  roundtrip_graph
    (fun () ->
      let g = Graph.create () in
      let tab = Graph.symtab g in
      let s = Table.fresh ~lb:1 ~ub:64 tab in
      let x = B.param g ~name:"x" [| s; Sym.Static 4 |] Dtype.F32 in
      let y = B.softmax g (B.gelu g (B.mulf g x 0.5)) in
      Graph.set_outputs g [ y ];
      g)
    [ Nd.init [| 3; 4 |] (fun i -> float_of_int ((i.(0) * 4) + i.(1)) /. 6.0) ]

let test_roundtrip_attention_shapes () =
  roundtrip_graph
    (fun () ->
      let g = Graph.create () in
      let tab = Graph.symtab g in
      let b = Table.fresh tab and s = Table.fresh ~ub:64 tab in
      let x = B.param g ~name:"x" [| b; s; Sym.Static 8 |] Dtype.F32 in
      let heads = B.reshape g x [| b; s; Sym.Static 2; Sym.Static 4 |] in
      let q = B.transpose g heads [| 0; 2; 1; 3 |] in
      let scores = B.dot g q (B.transpose g q [| 0; 1; 3; 2 |]) in
      Graph.set_outputs g [ B.softmax g scores ];
      g)
    [ Nd.init [| 2; 3; 8 |] (fun i -> float_of_int (i.(0) + i.(1) + i.(2)) /. 5.0) ]

let test_roundtrip_structured_ops () =
  roundtrip_graph
    (fun () ->
      let g = Graph.create () in
      let tab = Graph.symtab g in
      let n = Table.fresh tab in
      let x = B.param g ~name:"x" [| n; Sym.Static 6 |] Dtype.F32 in
      let p = B.pad g x ~low:[| 0; 1 |] ~high:[| 0; 1 |] ~value:(-2.5) in
      let sl = B.slice g p ~starts:[| 0; 1 |] ~limits:[| -1; 7 |] ~strides:[| 1; 1 |] in
      let c = B.concat g ~axis:1 [ sl; x ] in
      let i = B.iota g ~out:[| n; Sym.Static 12 |] ~dim:1 in
      let m = B.cmp g Ir.Op.Lt i (B.constf g 6.0) in
      let sel = B.select g m c (B.neg g c) in
      Graph.set_outputs g [ sel ];
      g)
    [ Nd.init [| 2; 6 |] (fun i -> float_of_int ((i.(0) * 6) + i.(1))) ]

let test_roundtrip_pool_argmax () =
  roundtrip_graph
    (fun () ->
      let g = Graph.create () in
      let tab = Graph.symtab g in
      let w = Table.fresh ~lb:4 tab in
      let x = B.param g ~name:"x" [| Sym.Static 1; Sym.Static 4; w; Sym.Static 2 |] Dtype.F32 in
      let p = B.max_pool2d g x ~window:(2, 2) ~strides:(2, 2) in
      let am = B.argmax g p ~dim:3 in
      Graph.set_outputs g [ p; am ];
      g)
    [ Nd.init [| 1; 4; 6; 2 |] (fun i -> float_of_int ((i.(1) * 13) + (i.(2) * 2) + i.(3))) ]

let test_roundtrip_gather_conv () =
  roundtrip_graph
    (fun () ->
      let g = Graph.create () in
      let tab = Graph.symtab g in
      let b = Table.fresh tab in
      let img = B.param g ~name:"img" [| b; Sym.Static 6; Sym.Static 6; Sym.Static 1 |] Dtype.F32 in
      let w =
        B.const g (Nd.init [| 3; 3; 1; 2 |] (fun i -> float_of_int (i.(0) + i.(1)) /. 4.0))
      in
      let conv = B.conv2d g img w ~strides:(2, 2) ~padding:(1, 1) in
      let table = B.const g (Nd.init [| 4; 2 |] (fun i -> float_of_int ((i.(0) * 2) + i.(1)))) in
      let ids = B.cast g Dtype.I32 (B.iota g ~out:[| b |] ~dim:0) in
      let got = B.gather g table ids in
      Graph.set_outputs g [ conv; got ];
      g)
    [ Nd.init [| 2; 6; 6; 1 |] (fun i -> float_of_int (i.(1) + i.(2)) /. 3.0) ]

let prop_roundtrip_random_pointwise =
  QCheck.Test.make ~name:"random pointwise programs round-trip" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let build () =
        let g = Graph.create () in
        let tab = Graph.symtab g in
        let s = Table.fresh tab in
        let x = B.param g ~name:"x" [| s |] Dtype.F32 in
        let st = Random.State.copy st in
        let pool = ref [ x ] in
        let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
        for _ = 1 to 6 do
          let v =
            match Random.State.int st 5 with
            | 0 -> B.add g (pick ()) (pick ())
            | 1 -> B.mul g (pick ()) (pick ())
            | 2 -> B.tanh g (pick ())
            | 3 -> B.maxf g (pick ()) 0.25
            | _ -> B.logistic g (pick ())
          in
          pool := v :: !pool
        done;
        Graph.set_outputs g [ List.hd !pool ];
        g
      in
      let g1 = build () in
      let g2 = Ir.Parser.parse (Ir.Printer.to_string ~with_symbols:true g1) in
      let input = Nd.init [| 5 |] (fun i -> float_of_int i.(0) /. 4.0) in
      run_both g1 g2 [ input ])

let () =
  Alcotest.run "parser"
    [
      ( "parse",
        [
          Alcotest.test_case "hand written" `Quick test_hand_written;
          Alcotest.test_case "symbol constraints" `Quick test_symbol_constraints_recovered;
          Alcotest.test_case "shared symbols" `Quick test_shared_symbols_unify;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "round trips",
        [
          Alcotest.test_case "pointwise" `Quick test_roundtrip_pointwise;
          Alcotest.test_case "attention shapes" `Quick test_roundtrip_attention_shapes;
          Alcotest.test_case "structured ops" `Quick test_roundtrip_structured_ops;
          Alcotest.test_case "gather+conv" `Quick test_roundtrip_gather_conv;
          Alcotest.test_case "pool+argmax" `Quick test_roundtrip_pool_argmax;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_random_pointwise ]);
    ]
