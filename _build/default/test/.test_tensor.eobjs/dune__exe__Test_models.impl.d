test/test_models.ml: Alcotest Array Disc Float Ir List Models Printf Tensor
