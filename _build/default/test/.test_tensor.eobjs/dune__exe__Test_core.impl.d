test/test_core.ml: Alcotest Array Codegen Disc Float Fusion Ir List Models QCheck QCheck_alcotest Symshape Tensor
