test/test_memplan.ml: Alcotest Fusion Ir List Models QCheck QCheck_alcotest Runtime Symshape Tensor
