test/test_memplan.mli:
