test/test_workloads.ml: Alcotest Array Float List Models QCheck QCheck_alcotest Workloads
