test/test_gpusim.ml: Alcotest Float Gpusim List QCheck QCheck_alcotest
