test/test_symshape.ml: Alcotest Array List QCheck QCheck_alcotest Symshape
