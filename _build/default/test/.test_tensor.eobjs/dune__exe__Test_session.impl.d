test/test_session.ml: Alcotest Disc Float Gpusim Ir List Models QCheck QCheck_alcotest Runtime Tensor
