test/test_parser.ml: Alcotest Array Ir List QCheck QCheck_alcotest Random Symshape Tensor
