test/test_extensions.ml: Alcotest Codegen Disc Float Fusion Ir List Models Printf QCheck QCheck_alcotest Runtime String Symshape Tensor
