test/test_ir.ml: Alcotest Array Float Ir List QCheck QCheck_alcotest Random String Symshape Tensor
