test/test_specialize.ml: Alcotest Array Disc Ir List Models Runtime Symshape Tensor
