test/test_specialize.mli:
