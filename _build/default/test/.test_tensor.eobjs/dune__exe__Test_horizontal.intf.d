test/test_horizontal.mli:
