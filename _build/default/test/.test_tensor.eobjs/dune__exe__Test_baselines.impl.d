test/test_baselines.ml: Alcotest Baselines Float Gpusim Hashtbl List Models Printf Runtime
