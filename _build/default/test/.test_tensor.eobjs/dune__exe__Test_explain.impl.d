test/test_explain.ml: Alcotest Fusion Ir Symshape Tensor
