test/test_codegen.ml: Alcotest Array Codegen Fusion Gpusim Hashtbl Ir List QCheck QCheck_alcotest Symshape Tensor
