test/test_horizontal.ml: Alcotest Array Disc Fusion Ir List QCheck QCheck_alcotest Random Runtime Symshape Tensor
