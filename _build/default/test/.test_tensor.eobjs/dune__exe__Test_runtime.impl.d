test/test_runtime.ml: Alcotest Array Fusion Ir List QCheck QCheck_alcotest Runtime Symshape Tensor
