test/test_golden.ml: Alcotest Codegen Disc Fusion Gpusim Ir List Runtime Symshape Tensor
