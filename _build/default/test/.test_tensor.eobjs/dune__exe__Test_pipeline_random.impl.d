test/test_pipeline_random.ml: Alcotest Array Disc Float Fusion Hashtbl Ir List Option QCheck QCheck_alcotest Random Runtime Symshape Tensor
