test/test_fusion.ml: Alcotest Fusion Hashtbl Ir List Option QCheck QCheck_alcotest Random Symshape Tensor
