(* Tests for the extension features: constant folding, fp16 precision
   mode, the pseudo-CUDA emitter — plus failure-injection tests on the
   public API (invalid inputs must fail loudly, never corrupt state). *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Nd = Tensor.Nd
module Planner = Fusion.Planner
module Kernel = Codegen.Kernel

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- constant folding ----------------------------------------------------- *)

let test_fold_constant_chain () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  (* exp(2 + 3) is a constant subtree; x * that must fold the subtree *)
  let c = B.exp g (B.add g (B.constf g 2.0) (B.constf g 3.0)) in
  let y = B.mul g x c in
  Graph.set_outputs g [ y ];
  let stats = Ir.Passes.fold_constants g in
  check_bool "folded" true (stats.Ir.Passes.simplified >= 2);
  (* the folded node is now a constant with value e^5 *)
  (match (Graph.inst g c).op with
  | Op.Constant nd ->
      check_bool "value" true (Float.abs (Nd.to_scalar nd -. Float.exp 5.0) < 1e-3)
  | _ -> Alcotest.fail "expected folded constant");
  (* semantics unchanged *)
  let input = Nd.of_array [| 2 |] [| 1.0; 2.0 |] in
  match Ir.Interp.run g [ input ] with
  | [ out ] ->
      check_bool "result" true
        (Nd.equal_approx ~eps:1e-3 out (Nd.map (fun v -> v *. Float.exp 5.0) input))
  | _ -> Alcotest.fail "one output"

let test_fold_respects_dynamic_shapes () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  (* iota over a dynamic shape cannot fold *)
  let i1 = B.iota g ~out:[| s |] ~dim:0 in
  (* iota over a static shape can *)
  let i2 = B.iota g ~out:[| Sym.Static 4 |] ~dim:0 in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  Graph.set_outputs g [ B.add g x i1; B.exp g i2 ];
  ignore (Ir.Passes.fold_constants g);
  check_bool "dynamic iota kept" true
    (match (Graph.inst g i1).op with Op.Iota _ -> true | _ -> false);
  check_bool "static iota folded" true
    (match (Graph.inst g i2).op with Op.Constant _ -> true | _ -> false)

let test_fold_size_bound () =
  let g = Graph.create () in
  let big = B.iota g ~out:[| Sym.Static 100; Sym.Static 100 |] ~dim:0 in
  Graph.set_outputs g [ B.exp g big ];
  ignore (Ir.Passes.fold_constants ~max_elements:100 g);
  check_bool "too big to fold" true
    (match (Graph.inst g big).op with Op.Iota _ -> true | _ -> false)

(* --- precision ------------------------------------------------------------- *)

let test_f16_conversion () =
  let entry = Models.Suite.find "dien" in
  let built = entry.Models.Suite.build_tiny () in
  let n = Ir.Precision.to_f16 built.Models.Common.graph in
  check_bool "converted many" true (n > 10);
  (* integer/bool values untouched *)
  Graph.iter built.Models.Common.graph (fun i ->
      check_bool "no f32 left" true (i.Graph.dtype <> Dtype.F32));
  Graph.verify built.Models.Common.graph

let test_f16_numerics_preserved () =
  let entry = Models.Suite.find "dien" in
  let env = entry.Models.Suite.tiny_dims in
  let b32 = entry.Models.Suite.build_tiny () in
  let expected = Ir.Interp.run b32.Models.Common.graph (Models.Common.test_inputs b32 env) in
  let b16 = entry.Models.Suite.build_tiny () in
  ignore (Ir.Precision.to_f16 b16.Models.Common.graph);
  let c = Disc.Compiler.compile b16.Models.Common.graph in
  let inputs16 = Models.Common.test_inputs b16 env in
  let got, _ = Disc.Compiler.run c inputs16 in
  List.iter2
    (fun e o -> check_bool "same floats" true (Nd.equal_approx ~eps:1e-5 e o))
    expected got

let test_f16_halves_traffic_and_memory () =
  let measure ~half =
    let entry = Models.Suite.find "bert" in
    let built = entry.Models.Suite.build () in
    if half then ignore (Ir.Precision.to_f16 built.Models.Common.graph);
    ignore (Ir.Passes.run_all built.Models.Common.graph);
    let plan = Planner.plan built.Models.Common.graph in
    let exe = Runtime.Executable.compile built.Models.Common.graph plan in
    Runtime.Executable.simulate exe
      (Models.Common.binding_for built [ ("batch", 2); ("seq", 64) ])
  in
  let p32 = measure ~half:false and p16 = measure ~half:true in
  let ratio =
    float_of_int p16.Runtime.Profile.bytes_moved /. float_of_int p32.Runtime.Profile.bytes_moved
  in
  check_bool "traffic roughly halves" true (ratio > 0.45 && ratio < 0.60);
  check_bool "peak memory halves" true
    (p16.Runtime.Profile.peak_bytes * 2 <= p32.Runtime.Profile.peak_bytes + 1024);
  check_bool "fp16 faster" true
    (Runtime.Profile.total_us p16 < Runtime.Profile.total_us p32)

(* --- emitter ---------------------------------------------------------------- *)

let softmax_graph () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab and s = Table.fresh ~ub:512 tab in
  let x = B.param g ~name:"x" [| b; s |] Dtype.F32 in
  Graph.set_outputs g [ B.softmax g x ];
  g

let test_emit_stitch_kernel () =
  let g = softmax_graph () in
  let plan = Planner.plan g in
  let c = List.hd plan.Fusion.Cluster.clusters in
  let k = Kernel.build g Kernel.default_config c in
  let code = Codegen.Emit.emit g k in
  check_bool "is a stitch kernel" true (contains code "kStitch");
  check_bool "has shared-memory relay" true (contains code "__shared__ float relay");
  check_bool "one block per row" true (contains code "one block per row");
  check_bool "parameterized by runtime dims" true (contains code "dims[");
  check_bool "reduction emitted" true (contains code "block_reduce");
  check_bool "exp emitted" true (contains code "__expf");
  check_bool "lists speculative versions" true (contains code "version vec4")

let test_emit_loop_kernel () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s; Sym.Static 32 |] Dtype.F32 in
  Graph.set_outputs g [ B.tanh g (B.addf g x 1.0) ];
  let plan = Planner.plan g in
  let c = List.hd plan.Fusion.Cluster.clusters in
  let code = Codegen.Emit.emit g (Kernel.build g Kernel.default_config c) in
  check_bool "grid-stride loop" true (contains code "idx += gridDim.x * blockDim.x");
  check_bool "symbolic numel" true (contains code "dims[0] * 32");
  check_bool "tanh body" true (contains code "tanhf");
  check_bool "no shape literals for dynamic dims" false (contains code "numel = 0")

let test_emit_program_covers_plan () =
  let g = softmax_graph () in
  let plan = Planner.plan ~config:Planner.no_fusion_config g in
  let code = Codegen.Emit.emit_program g plan Kernel.default_config in
  (* every non-library cluster appears *)
  List.iter
    (fun c ->
      if c.Fusion.Cluster.kind <> Fusion.Cluster.Library then
        check_bool "kernel present" true
          (contains code (Printf.sprintf "kernel_%d" c.Fusion.Cluster.cid)))
    plan.Fusion.Cluster.clusters

(* --- failure injection -------------------------------------------------------- *)

let test_wrong_input_arity () =
  let g = softmax_graph () in
  let c = Disc.Compiler.compile g in
  check_bool "arity error" true
    (try
       ignore (Disc.Compiler.run c []);
       false
     with Ir.Interp.Eval_error _ -> true)

let test_inconsistent_input_shapes () =
  (* two params sharing a symbol must agree at runtime *)
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  let y = B.param g ~name:"y" [| s |] Dtype.F32 in
  Graph.set_outputs g [ B.add g x y ];
  let c = Disc.Compiler.compile g in
  check_bool "conflicting shapes rejected" true
    (try
       ignore (Disc.Compiler.run c [ Nd.create [| 3 |] 0.0; Nd.create [| 4 |] 0.0 ]);
       false
     with Table.Inconsistent _ -> true)

let test_rank_mismatch_rejected () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  Graph.set_outputs g [ B.exp g x ];
  let c = Disc.Compiler.compile g in
  check_bool "rank mismatch rejected" true
    (try
       ignore (Disc.Compiler.run c [ Nd.create [| 2; 2 |] 0.0 ]);
       false
     with Table.Inconsistent _ -> true)

let test_unbound_simulation_dim () =
  let entry = Models.Suite.find "bert" in
  let built = entry.Models.Suite.build () in
  let c = Disc.Compiler.compile built.Models.Common.graph in
  let batch = Models.Common.dim_exn built "batch" in
  check_bool "missing seq binding fails" true
    (try
       ignore (Disc.Compiler.simulate c [ (batch, 4) ]);
       false
     with Table.Inconsistent _ -> true)

let test_removed_instruction_access () =
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 2 |] Dtype.F32 in
  let dead = B.exp g x in
  let live = B.tanh g x in
  Graph.set_outputs g [ live ];
  ignore (Ir.Passes.dce g);
  check_bool "removed inst errors" true
    (try
       ignore (Graph.inst g dead);
       false
     with Graph.Type_error _ -> true);
  check_int "live inst still there" live (Graph.inst g live).Graph.id

let test_outputs_protected_from_removal () =
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 2 |] Dtype.F32 in
  let y = B.exp g x in
  Graph.set_outputs g [ y ];
  check_bool "cannot remove output" true
    (try
       Graph.remove g y;
       false
     with Graph.Type_error _ -> true);
  check_bool "cannot remove parameter" true
    (try
       Graph.remove g x;
       false
     with Graph.Type_error _ -> true)

let prop_f16_agrees_with_f32_everywhere =
  QCheck.Test.make ~name:"fp16 pipeline = fp32 pipeline numerically" ~count:10
    QCheck.(int_range 1 5)
    (fun batch ->
      let entry = Models.Suite.find "crnn" in
      let env = [ ("batch", batch); ("width", 32) ] in
      let b32 = entry.Models.Suite.build_tiny () in
      let expected =
        Ir.Interp.run b32.Models.Common.graph (Models.Common.test_inputs b32 env)
      in
      let b16 = entry.Models.Suite.build_tiny () in
      ignore (Ir.Precision.to_f16 b16.Models.Common.graph);
      let c = Disc.Compiler.compile b16.Models.Common.graph in
      let got, _ = Disc.Compiler.run c (Models.Common.test_inputs b16 env) in
      List.for_all2 (Nd.equal_approx ~eps:1e-5) expected got)

let () =
  Alcotest.run "extensions"
    [
      ( "constant folding",
        [
          Alcotest.test_case "folds chains" `Quick test_fold_constant_chain;
          Alcotest.test_case "respects dynamic shapes" `Quick test_fold_respects_dynamic_shapes;
          Alcotest.test_case "size bound" `Quick test_fold_size_bound;
        ] );
      ( "precision",
        [
          Alcotest.test_case "f16 conversion" `Quick test_f16_conversion;
          Alcotest.test_case "numerics preserved" `Quick test_f16_numerics_preserved;
          Alcotest.test_case "traffic halves" `Quick test_f16_halves_traffic_and_memory;
        ] );
      ( "emitter",
        [
          Alcotest.test_case "stitch kernel" `Quick test_emit_stitch_kernel;
          Alcotest.test_case "loop kernel" `Quick test_emit_loop_kernel;
          Alcotest.test_case "program coverage" `Quick test_emit_program_covers_plan;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "wrong arity" `Quick test_wrong_input_arity;
          Alcotest.test_case "inconsistent shapes" `Quick test_inconsistent_input_shapes;
          Alcotest.test_case "rank mismatch" `Quick test_rank_mismatch_rejected;
          Alcotest.test_case "unbound sim dim" `Quick test_unbound_simulation_dim;
          Alcotest.test_case "removed inst" `Quick test_removed_instruction_access;
          Alcotest.test_case "outputs protected" `Quick test_outputs_protected_from_removal;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_f16_agrees_with_f32_everywhere ]);
    ]
