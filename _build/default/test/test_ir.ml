(* Tests for the IR: construction-time shape propagation and constraint
   recording, the verifier, the interpreter, and the optimization
   passes. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op
module B = Ir.Builder
module Nd = Tensor.Nd
module Ops = Tensor.Ops_ref
module Dtype = Tensor.Dtype

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let nd_testable = Alcotest.testable Nd.pp (fun a b -> Nd.equal_approx ~eps:1e-6 a b)

let dim_of g id i = (Graph.inst g id).shape.(i)

(* --- shape propagation --------------------------------------------------- *)

let test_binary_merges_dims () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s1 = Table.fresh tab and s2 = Table.fresh tab in
  let x = B.param g ~name:"x" [| s1; Sym.Static 4 |] Dtype.F32 in
  let y = B.param g ~name:"y" [| s2; Sym.Static 4 |] Dtype.F32 in
  check_bool "initially unrelated" false (Table.equal_dims tab s1 s2);
  let _z = B.add g x y in
  check_bool "add merges leading dims" true (Table.equal_dims tab s1 s2)

let test_scalar_mixing () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  let z = B.addf g x 1.0 in
  check_bool "scalar add keeps shape" true
    (Table.equal_shapes tab (Graph.inst g z).shape [| s |])

let test_dot_shapes () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab and m = Table.fresh tab in
  let x = B.param g ~name:"x" [| b; m; Sym.Static 64 |] Dtype.F32 in
  let w = B.param g ~name:"w" [| Sym.Static 64; Sym.Static 32 |] Dtype.F32 in
  let z = B.dot g x w in
  check_bool "out" true
    (Table.equal_shapes tab (Graph.inst g z).shape [| b; m; Sym.Static 32 |])

let test_dot_contracting_mismatch () =
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 2; Sym.Static 3 |] Dtype.F32 in
  let w = B.param g ~name:"w" [| Sym.Static 4; Sym.Static 5 |] Dtype.F32 in
  check_bool "raises" true
    (try
       ignore (B.dot g x w);
       false
     with Graph.Type_error _ -> true)

let test_dot_merges_dynamic_contraction () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let k1 = Table.fresh tab and k2 = Table.fresh tab in
  let x = B.param g ~name:"x" [| Sym.Static 2; k1 |] Dtype.F32 in
  let w = B.param g ~name:"w" [| k2; Sym.Static 5 |] Dtype.F32 in
  ignore (B.dot g x w);
  check_bool "k1 = k2 after dot" true (Table.equal_dims tab k1 k2)

let test_reshape_records_product () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab and s = Table.fresh tab and bs = Table.fresh tab in
  let x = B.param g ~name:"x" [| b; s; Sym.Static 768 |] Dtype.F32 in
  let flat = B.reshape g x [| bs; Sym.Static 768 |] in
  check_bool "b*s = bs recorded" true (Table.products_equal tab [| b; s |] [| bs |]);
  check_bool "numel equal" true
    (Table.numel_equal tab (Graph.inst g x).shape (Graph.inst g flat).shape)

let test_reshape_static_mismatch () =
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 6 |] Dtype.F32 in
  check_bool "raises" true
    (try
       ignore (B.reshape g x [| Sym.Static 7 |]);
       false
     with Graph.Type_error _ -> true)

let test_concat_sum_dim () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s1 = Table.fresh ~ub:10 tab and s2 = Table.fresh ~ub:20 tab in
  let x = B.param g ~name:"x" [| s1; Sym.Static 4 |] Dtype.F32 in
  let y = B.param g ~name:"y" [| s2; Sym.Static 4 |] Dtype.F32 in
  let z = B.concat g ~axis:0 [ x; y ] in
  let d = dim_of g z 0 in
  Alcotest.(check (option int)) "ub of concat axis" (Some 30) (Table.upper_bound tab d)

let test_conv_output_dims () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let h = Table.fresh ~lb:8 ~ub:64 tab in
  let x = B.param g ~name:"x" [| Sym.Static 1; h; h; Sym.Static 3 |] Dtype.F32 in
  let w = B.param g ~name:"w"
      [| Sym.Static 3; Sym.Static 3; Sym.Static 3; Sym.Static 8 |] Dtype.F32 in
  let z = B.conv2d g x w ~strides:(2, 2) ~padding:(1, 1) in
  let oh = dim_of g z 1 in
  (* (h + 2 - 3)/2 + 1; for h=64 -> 32 *)
  Alcotest.(check (option int)) "ub" (Some 32) (Table.upper_bound tab oh);
  let bnd = Table.empty_binding () in
  Table.bind_dim tab bnd h 16;
  Alcotest.(check (option int)) "derived eval" (Some 8) (Table.eval_dim tab bnd oh)

let test_slice_dynamic_full_range_ok () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s; Sym.Static 8 |] Dtype.F32 in
  let z = B.slice g x ~starts:[| 0; 0 |] ~limits:[| -1; 4 |] ~strides:[| 1; 1 |] in
  check_bool "dynamic dim preserved" true (Table.equal_dims tab (dim_of g z 0) s);
  (match dim_of g z 1 with
  | Sym.Static 4 -> ()
  | d -> Alcotest.failf "expected 4, got %s" (Sym.dim_to_string d));
  check_bool "partial slice of dynamic dim rejected" true
    (try
       ignore (B.slice g x ~starts:[| 1; 0 |] ~limits:[| -1; 8 |] ~strides:[| 1; 1 |]);
       false
     with Graph.Type_error _ -> true)

let test_broadcast_merges () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab and s' = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  let z = B.broadcast g x ~dims:[| 1 |] ~out:[| Sym.Static 2; s' |] in
  check_bool "mapped dim merged" true (Table.equal_dims tab s s');
  check_int "rank" 2 (Sym.rank (Graph.inst g z).shape)

let test_verify_catches_cycle_free_violation () =
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 2 |] Dtype.F32 in
  let y = B.exp g x in
  Graph.set_outputs g [ y ];
  Graph.verify g;
  (* corrupt: make y reference itself *)
  (Graph.inst g y).args.(0) <- y;
  check_bool "verifier rejects forward ref" true
    (try
       Graph.verify g;
       false
     with Graph.Type_error _ -> true)

let test_dtype_checking () =
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 2 |] Dtype.I32 in
  check_bool "exp on ints rejected" true
    (try
       ignore (B.exp g x);
       false
     with Graph.Type_error _ -> true);
  let b = B.param g ~name:"b" [| Sym.Static 2 |] Dtype.Bool in
  check_bool "add bool+int rejected" true
    (try
       ignore (B.add g x b);
       false
     with Graph.Type_error _ -> true)

let test_pool_shapes_and_semantics () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let w = Table.fresh ~lb:4 ~ub:64 tab in
  let x = B.param g ~name:"x" [| Sym.Static 1; Sym.Static 4; w; Sym.Static 1 |] Dtype.F32 in
  let p = B.max_pool2d g x ~window:(2, 2) ~strides:(2, 2) in
  Graph.set_outputs g [ p ];
  (* derived output dims evaluate at runtime *)
  let bnd = Table.empty_binding () in
  Table.bind_dim tab bnd w 10;
  let out_w = (Graph.inst g p).shape.(2) in
  Alcotest.(check (option int)) "pooled width" (Some 5) (Table.eval_dim tab bnd out_w);
  (* semantics: 2x2 max over a ramp picks the bottom-right corner *)
  let input =
    Nd.init [| 1; 4; 10; 1 |] (fun i -> float_of_int ((i.(1) * 10) + i.(2)))
  in
  match Ir.Interp.run g [ input ] with
  | [ out ] ->
      Alcotest.(check (array int)) "shape" [| 1; 2; 5; 1 |] (Nd.shape out);
      Alcotest.(check (float 1e-9)) "corner max" 11.0 (Nd.get out [| 0; 0; 0; 0 |])
  | _ -> Alcotest.fail "one output"

let test_avg_poolable_sum () =
  (* sum pooling + divide = average pooling composite *)
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 1; Sym.Static 2; Sym.Static 2; Sym.Static 1 |] Dtype.F32 in
  let s = B.reduce_window g Op.R_sum x ~window:(2, 2) ~strides:(2, 2) ~padding:(0, 0) in
  let avg = B.divf g s 4.0 in
  Graph.set_outputs g [ avg ];
  let input = Nd.of_array [| 1; 2; 2; 1 |] [| 1.; 2.; 3.; 6. |] in
  match Ir.Interp.run g [ input ] with
  | [ out ] -> Alcotest.(check (float 1e-9)) "avg" 3.0 (Nd.to_scalar out)
  | _ -> Alcotest.fail "one output"

let test_argmax () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab in
  let x = B.param g ~name:"x" [| b; Sym.Static 4 |] Dtype.F32 in
  let am = B.argmax g x ~dim:1 in
  Graph.set_outputs g [ am ];
  check_bool "i32 result" true ((Graph.inst g am).dtype = Dtype.I32);
  let input = Nd.of_array [| 2; 4 |] [| 1.; 9.; 3.; 9.; -5.; -1.; -2.; -9. |] in
  match Ir.Interp.run g [ input ] with
  | [ out ] ->
      Alcotest.(check (float 0.0)) "first max wins" 1.0 (Nd.get out [| 0 |]);
      Alcotest.(check (float 0.0)) "row 1" 1.0 (Nd.get out [| 1 |])
  | _ -> Alcotest.fail "one output"

(* --- interpreter --------------------------------------------------------- *)

let test_interp_pointwise_chain () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  let y = B.mulf g (B.addf g x 1.0) 2.0 in
  Graph.set_outputs g [ y ];
  let input = Nd.of_array [| 3 |] [| 0.; 1.; 2. |] in
  (match Ir.Interp.run g [ input ] with
  | [ out ] -> Alcotest.check nd_testable "(x+1)*2" (Nd.of_array [| 3 |] [| 2.; 4.; 6. |]) out
  | _ -> Alcotest.fail "one output expected");
  (* same compiled graph, different shape *)
  let input = Nd.of_array [| 5 |] [| 0.; 1.; 2.; 3.; 4. |] in
  match Ir.Interp.run g [ input ] with
  | [ out ] -> Alcotest.(check (array int)) "other shape" [| 5 |] (Nd.shape out)
  | _ -> Alcotest.fail "one output expected"

let test_interp_softmax () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab and s = Table.fresh tab in
  let x = B.param g ~name:"x" [| b; s |] Dtype.F32 in
  let y = B.softmax g x in
  Graph.set_outputs g [ y ];
  let input = Nd.init [| 2; 5 |] (fun i -> float_of_int ((i.(0) * 3) + i.(1)) /. 2.0) in
  match Ir.Interp.run g [ input ] with
  | [ out ] ->
      let rows = Ops.reduce Ops.R_sum out ~dims:[ 1 ] in
      Alcotest.check nd_testable "rows sum to 1" (Nd.create [| 2 |] 1.0) rows
  | _ -> Alcotest.fail "one output expected"

let test_interp_layernorm_stats () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab in
  let x = B.param g ~name:"x" [| b; Sym.Static 8 |] Dtype.F32 in
  let scale = B.const g (Nd.create [| 8 |] 1.0) in
  let bias = B.const g (Nd.create [| 8 |] 0.0) in
  let y = B.layernorm g x ~scale ~bias ~eps:1e-5 in
  Graph.set_outputs g [ y ];
  let input = Nd.init [| 3; 8 |] (fun i -> float_of_int ((i.(0) * 11) + (i.(1) * i.(1)))) in
  match Ir.Interp.run g [ input ] with
  | [ out ] ->
      let mean = Ops.reduce Ops.R_sum out ~dims:[ 1 ] in
      Nd.data mean |> Array.iter (fun m -> check_bool "mean ~ 0" true (Float.abs m < 1e-3));
      let sq = Ops.reduce Ops.R_sum (Ops.mul out out) ~dims:[ 1 ] in
      Nd.data sq
      |> Array.iter (fun v -> check_bool "var ~ 1" true (Float.abs ((v /. 8.0) -. 1.0) < 1e-2))
  | _ -> Alcotest.fail "one output expected"

let test_interp_gelu_matches_formula () =
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 4 |] Dtype.F32 in
  let y = B.gelu g x in
  Graph.set_outputs g [ y ];
  let input = Nd.of_array [| 4 |] [| -2.0; -0.5; 0.0; 1.5 |] in
  match Ir.Interp.run g [ input ] with
  | [ out ] ->
      let expect =
        Nd.map (fun v -> 0.5 *. v *. (1.0 +. Ops.erf (v /. Float.sqrt 2.0))) input
      in
      Alcotest.check nd_testable "gelu" expect out
  | _ -> Alcotest.fail "one output expected"

let test_interp_multi_output () =
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 3 |] Dtype.F32 in
  let a = B.exp g x and b = B.neg g x in
  Graph.set_outputs g [ a; b ];
  let input = Nd.of_array [| 3 |] [| 0.; 1.; 2. |] in
  match Ir.Interp.run g [ input ] with
  | [ oa; ob ] ->
      Alcotest.check nd_testable "exp" (Ops.exp input) oa;
      Alcotest.check nd_testable "neg" (Ops.neg input) ob
  | _ -> Alcotest.fail "two outputs expected"

(* --- passes --------------------------------------------------------------- *)

let test_cse () =
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 4 |] Dtype.F32 in
  let a = B.exp g x in
  let b = B.exp g x in
  let z = B.add g a b in
  Graph.set_outputs g [ z ];
  let stats = Ir.Passes.cse g in
  check_int "one duplicate removed" 1 stats.Ir.Passes.cse_removed;
  let dstats = Ir.Passes.dce g in
  check_int "dup now dead" 1 dstats.Ir.Passes.dce_removed;
  (* semantics preserved *)
  let input = Nd.of_array [| 4 |] [| 0.; 1.; 2.; 3. |] in
  match Ir.Interp.run g [ input ] with
  | [ out ] ->
      Alcotest.check nd_testable "2*exp x" (Ops.add (Ops.exp input) (Ops.exp input)) out
  | _ -> Alcotest.fail "one output"

let test_simplify_algebraic () =
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 4 |] Dtype.F32 in
  let y = B.mulf g (B.addf g x 0.0) 1.0 in
  Graph.set_outputs g [ y ];
  let stats = Ir.Passes.run_all g in
  check_bool "rewrites happened" true (stats.Ir.Passes.simplified >= 2);
  (* y's uses redirect to x: output should now be x itself *)
  Alcotest.(check (list int)) "output collapses to x" [ x ] (Graph.outputs g)

let test_simplify_broadcast_identity () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab and s' = Table.fresh tab in
  Table.merge tab s s';
  let x = B.param g ~name:"x" [| s; Sym.Static 4 |] Dtype.F32 in
  (* dynamic broadcast to a provably identical shape *)
  let y = B.broadcast g x ~dims:[| 0; 1 |] ~out:[| s'; Sym.Static 4 |] in
  let z = B.exp g y in
  Graph.set_outputs g [ z ];
  ignore (Ir.Passes.run_all g);
  check_bool "broadcast gone" true
    (Graph.fold g (fun ok i -> ok && (match i.op with Op.Broadcast _ -> false | _ -> true)) true)

let test_simplify_reshape_chain () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab in
  let x = B.param g ~name:"x" [| b; Sym.Static 6 |] Dtype.F32 in
  let m = Table.fresh tab in
  let r1 = B.reshape g x [| m; Sym.Static 2 |] in
  (* reshape back to a provably equal shape *)
  let r2 = B.reshape g r1 [| b; Sym.Static 6 |] in
  let z = B.exp g r2 in
  Graph.set_outputs g [ z ];
  ignore (Ir.Passes.run_all g);
  let reshapes = Graph.fold g (fun n i -> match i.op with Op.Reshape _ -> n + 1 | _ -> n) 0 in
  check_int "reshape chain collapsed" 0 reshapes

let test_transpose_compose () =
  let g = Graph.create () in
  let x = B.param g ~name:"x" [| Sym.Static 2; Sym.Static 3; Sym.Static 4 |] Dtype.F32 in
  let t1 = B.transpose g x [| 2; 0; 1 |] in
  let t2 = B.transpose g t1 [| 1; 2; 0 |] in
  let z = B.exp g t2 in
  Graph.set_outputs g [ z ];
  ignore (Ir.Passes.run_all g);
  let transposes =
    Graph.fold g (fun n i -> match i.op with Op.Transpose _ -> n + 1 | _ -> n) 0
  in
  check_int "identity composition removed" 0 transposes

let test_passes_preserve_semantics () =
  (* a graph exercising many rewrites at once *)
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab and s = Table.fresh tab in
  let x = B.param g ~name:"x" [| b; s |] Dtype.F32 in
  let a1 = B.addf g x 0.0 in
  let a2 = B.mulf g a1 1.0 in
  let e1 = B.exp g a2 in
  let e2 = B.exp g a2 in
  let y = B.add g e1 e2 in
  let sm = B.softmax g y in
  Graph.set_outputs g [ sm ];
  let input = Nd.init [| 2; 7 |] (fun i -> float_of_int ((i.(0) * 5) + i.(1)) /. 4.0) in
  let before = Ir.Interp.run g [ input ] in
  ignore (Ir.Passes.run_all g);
  Graph.verify g;
  let after = Ir.Interp.run g [ input ] in
  List.iter2 (fun a b' -> Alcotest.check nd_testable "same results" a b') before after

let prop_passes_preserve_pointwise =
  (* random pointwise expression trees: passes must preserve semantics *)
  let gen = QCheck.Gen.(int_bound 1000) in
  QCheck.Test.make ~name:"passes preserve random pointwise graphs" ~count:60
    (QCheck.make gen) (fun seed ->
      let st = Random.State.make [| seed |] in
      let g = Graph.create () in
      let tab = Graph.symtab g in
      let s = Table.fresh tab in
      let x = B.param g ~name:"x" [| s |] Dtype.F32 in
      let pool = ref [ x ] in
      let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
      for _ = 1 to 8 do
        let v =
          match Random.State.int st 6 with
          | 0 -> B.add g (pick ()) (pick ())
          | 1 -> B.mul g (pick ()) (pick ())
          | 2 -> B.addf g (pick ()) 0.0
          | 3 -> B.mulf g (pick ()) 1.0
          | 4 -> B.tanh g (pick ())
          | _ -> B.exp g (B.mulf g (pick ()) 0.1)
        in
        pool := v :: !pool
      done;
      Graph.set_outputs g [ List.hd !pool ];
      let input = Nd.init [| 4 |] (fun i -> float_of_int i.(0) /. 3.0) in
      let before = Ir.Interp.run g [ input ] in
      ignore (Ir.Passes.run_all g);
      let after = Ir.Interp.run g [ input ] in
      List.for_all2 (Nd.equal_approx ~eps:1e-6) before after)

let test_printer_mentions_symbols () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s; Sym.Static 4 |] Dtype.F32 in
  let y = B.exp g x in
  Graph.set_outputs g [ y ];
  let text = Ir.Printer.to_string g in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "has symbolic dim" true (contains text "s0x4")

let () =
  Alcotest.run "ir"
    [
      ( "shape propagation",
        [
          Alcotest.test_case "binary merges dims" `Quick test_binary_merges_dims;
          Alcotest.test_case "scalar mixing" `Quick test_scalar_mixing;
          Alcotest.test_case "dot shapes" `Quick test_dot_shapes;
          Alcotest.test_case "dot mismatch" `Quick test_dot_contracting_mismatch;
          Alcotest.test_case "dot merges dynamic k" `Quick test_dot_merges_dynamic_contraction;
          Alcotest.test_case "reshape records product" `Quick test_reshape_records_product;
          Alcotest.test_case "reshape static mismatch" `Quick test_reshape_static_mismatch;
          Alcotest.test_case "concat sum dim" `Quick test_concat_sum_dim;
          Alcotest.test_case "conv output dims" `Quick test_conv_output_dims;
          Alcotest.test_case "slice dynamic rules" `Quick test_slice_dynamic_full_range_ok;
          Alcotest.test_case "broadcast merges" `Quick test_broadcast_merges;
          Alcotest.test_case "verifier" `Quick test_verify_catches_cycle_free_violation;
          Alcotest.test_case "dtype checking" `Quick test_dtype_checking;
          Alcotest.test_case "pooling" `Quick test_pool_shapes_and_semantics;
          Alcotest.test_case "avg pool composite" `Quick test_avg_poolable_sum;
          Alcotest.test_case "argmax" `Quick test_argmax;
        ] );
      ( "interp",
        [
          Alcotest.test_case "pointwise chain" `Quick test_interp_pointwise_chain;
          Alcotest.test_case "softmax" `Quick test_interp_softmax;
          Alcotest.test_case "layernorm stats" `Quick test_interp_layernorm_stats;
          Alcotest.test_case "gelu" `Quick test_interp_gelu_matches_formula;
          Alcotest.test_case "multi output" `Quick test_interp_multi_output;
        ] );
      ( "passes",
        [
          Alcotest.test_case "cse" `Quick test_cse;
          Alcotest.test_case "algebraic" `Quick test_simplify_algebraic;
          Alcotest.test_case "broadcast identity" `Quick test_simplify_broadcast_identity;
          Alcotest.test_case "reshape chain" `Quick test_simplify_reshape_chain;
          Alcotest.test_case "transpose compose" `Quick test_transpose_compose;
          Alcotest.test_case "semantics preserved" `Quick test_passes_preserve_semantics;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_passes_preserve_pointwise ] );
      ("printer", [ Alcotest.test_case "symbols shown" `Quick test_printer_mentions_symbols ]);
    ]
