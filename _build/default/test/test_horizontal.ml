(* Tests for the horizontal-fusion extension: independent same-domain
   kLoop clusters packed into a single launch. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Nd = Tensor.Nd
module Planner = Fusion.Planner
module Cluster = Fusion.Cluster

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* three independent pointwise chains over the same [s] domain, plus an
   unrelated chain over a different domain *)
let siblings_graph () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let t = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  let y = B.param g ~name:"y" [| t |] Dtype.F32 in
  let a = B.exp g (B.addf g x 1.0) in
  let b = B.tanh g (B.mulf g x 2.0) in
  let c = B.abs g (B.subf g x 3.0) in
  let d = B.neg g (B.mulf g y 4.0) in
  Graph.set_outputs g [ a; b; c; d ];
  (g, s, t)

let test_siblings_packed () =
  let g, _, _ = siblings_graph () in
  let base = Planner.plan g in
  check_int "four kLoop kernels without packing" 4 (Cluster.num_kernels base);
  let g, _, _ = siblings_graph () in
  let packed = Planner.plan ~config:Planner.horizontal_config g in
  (* the three same-domain chains pack; the different-domain chain stays *)
  check_int "two kernels with packing" 2 (Cluster.num_kernels packed);
  check_int "one horizontal cluster" 1 (Cluster.count_kind packed Cluster.Horizontal)

let test_different_domains_not_packed () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab and t = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  let y = B.param g ~name:"y" [| t |] Dtype.F32 in
  Graph.set_outputs g [ B.exp g x; B.exp g y ];
  let plan = Planner.plan ~config:Planner.horizontal_config g in
  check_int "unrelated domains stay apart" 2 (Cluster.num_kernels plan);
  check_int "no horizontal cluster" 0 (Cluster.count_kind plan Cluster.Horizontal)

let test_dependent_chains_not_packed () =
  (* b depends on a through a library op: packing a with b would break
     the schedule (cycle through the dot) *)
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s; Sym.Static 8 |] Dtype.F32 in
  let w = B.param g ~name:"w" [| Sym.Static 8; Sym.Static 8 |] Dtype.F32 in
  let a = B.exp g x in
  let d = B.dot g a w in
  let b = B.tanh g d in
  Graph.set_outputs g [ b ];
  let plan = Planner.plan ~config:Planner.horizontal_config g in
  check_int "no horizontal packing across dependency" 0
    (Cluster.count_kind plan Cluster.Horizontal);
  check_int "three kernels (exp, dot, tanh)" 3 (Cluster.num_kernels plan)

let test_packed_execution_correct () =
  let g, _, _ = siblings_graph () in
  let expected =
    Ir.Interp.run g
      [ Nd.init [| 5 |] (fun i -> float_of_int i.(0)); Nd.init [| 3 |] (fun i -> float_of_int i.(0)) ]
  in
  let g2, _, _ = siblings_graph () in
  let c =
    Disc.Compiler.compile
      ~options:{ Disc.Compiler.default_options with planner = Planner.horizontal_config }
      g2
  in
  let got, profile =
    Disc.Compiler.run c
      [ Nd.init [| 5 |] (fun i -> float_of_int i.(0)); Nd.init [| 3 |] (fun i -> float_of_int i.(0)) ]
  in
  List.iter2
    (fun e o -> check_bool "packed result correct" true (Nd.equal_approx ~eps:1e-6 e o))
    expected got;
  check_int "two launches" 2 profile.Runtime.Profile.launches

let test_packing_reduces_launch_cost () =
  let mk config =
    let g, s, t = siblings_graph () in
    let plan = Planner.plan ~config g in
    let exe = Runtime.Executable.compile g plan in
    let bnd = Table.empty_binding () in
    Table.bind_dim (Graph.symtab g) bnd s 1000;
    Table.bind_dim (Graph.symtab g) bnd t 1000;
    Runtime.Executable.simulate exe bnd
  in
  let p_base = mk Planner.default_config in
  let p_pack = mk Planner.horizontal_config in
  check_bool "fewer launches" true
    (p_pack.Runtime.Profile.launches < p_base.Runtime.Profile.launches);
  check_bool "lower latency" true
    (Runtime.Profile.total_us p_pack < Runtime.Profile.total_us p_base)

let test_default_off () =
  check_bool "extension off by default" false Planner.default_config.Planner.enable_horizontal

let prop_horizontal_preserves_semantics =
  QCheck.Test.make ~name:"horizontal packing preserves semantics" ~count:30
    QCheck.(int_bound 10000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let build () =
        let g = Graph.create () in
        let tab = Graph.symtab g in
        let s = Table.fresh tab in
        let x = B.param g ~name:"x" [| s |] Dtype.F32 in
        let st = Random.State.copy st in
        (* several independent chains of random length *)
        let chains =
          List.init 4 (fun _ ->
              let rec go v n = if n = 0 then v else go (B.tanh g (B.addf g v 0.5)) (n - 1) in
              go x (1 + Random.State.int st 3))
        in
        Graph.set_outputs g chains;
        g
      in
      let g1 = build () in
      let input = Nd.init [| 7 |] (fun i -> float_of_int i.(0) /. 3.0) in
      let expected = Ir.Interp.run g1 [ input ] in
      let g2 = build () in
      let c =
        Disc.Compiler.compile
          ~options:{ Disc.Compiler.default_options with planner = Planner.horizontal_config }
          g2
      in
      let got, _ = Disc.Compiler.run c [ input ] in
      List.for_all2 (Nd.equal_approx ~eps:1e-6) expected got)

let () =
  Alcotest.run "horizontal"
    [
      ( "packing",
        [
          Alcotest.test_case "siblings packed" `Quick test_siblings_packed;
          Alcotest.test_case "different domains" `Quick test_different_domains_not_packed;
          Alcotest.test_case "dependencies respected" `Quick test_dependent_chains_not_packed;
          Alcotest.test_case "execution correct" `Quick test_packed_execution_correct;
          Alcotest.test_case "launch cost drops" `Quick test_packing_reduces_launch_cost;
          Alcotest.test_case "off by default" `Quick test_default_off;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_horizontal_preserves_semantics ]);
    ]
