(* Tests for the fusion explainer: each verdict is reachable and names
   the actual blocking rule. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Planner = Fusion.Planner
module Explain = Fusion.Explain

let check_verdict msg expected g plan ~a ~b =
  let v = Explain.explain g plan ~a ~b in
  Alcotest.(check string) msg expected (Explain.verdict_to_string v)

let test_fused () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  let a = B.exp g x in
  let b = B.tanh g a in
  Graph.set_outputs g [ b ];
  let plan = Planner.plan g in
  check_verdict "fused" "already fused into the same kernel" g plan ~a ~b

let test_library_blocks () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s; Sym.Static 4 |] Dtype.F32 in
  let w = B.param g ~name:"w" [| Sym.Static 4; Sym.Static 4 |] Dtype.F32 in
  let d = B.dot g x w in
  let t = B.tanh g d in
  Graph.set_outputs g [ t ];
  let plan = Planner.plan g in
  check_verdict "library" "producer is not fusable (dot)" g plan ~a:d ~b:t

let test_domain_mismatch () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab and t = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  let y = B.param g ~name:"y" [| t |] Dtype.F32 in
  let a = B.exp g x and b = B.exp g y in
  Graph.set_outputs g [ a; b ];
  let plan = Planner.plan g in
  match Explain.explain g plan ~a ~b with
  | Explain.Not_adjacent -> () (* unrelated chains: correct verdict *)
  | v -> Alcotest.failf "expected Not_adjacent, got %s" (Explain.verdict_to_string v)

let test_reduce_blocks_without_stitch () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let bdim = Table.fresh tab and s = Table.fresh ~ub:128 tab in
  let x = B.param g ~name:"x" [| bdim; s |] Dtype.F32 in
  let red = B.reduce_sum g x ~dims:[ 1 ] in
  let post = B.exp g red in
  Graph.set_outputs g [ post ];
  let config = Planner.no_stitch_config in
  let plan = Planner.plan ~config g in
  match Explain.explain ~config g plan ~a:red ~b:post with
  | Explain.Reduce_in_producer -> ()
  | v -> Alcotest.failf "expected Reduce_in_producer, got %s" (Explain.verdict_to_string v)

let test_unbounded_row_blocks_stitch () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let bdim = Table.fresh tab and s = Table.fresh tab (* no ub *) in
  let x = B.param g ~name:"x" [| bdim; s |] Dtype.F32 in
  let y = B.softmax g x in
  Graph.set_outputs g [ y ];
  let plan = Planner.plan g in
  (* the max-reduce and the final div stay in separate kernels *)
  let red =
    Graph.fold g
      (fun acc i -> match i.Graph.op with Ir.Op.Reduce _ -> i.Graph.id | _ -> acc)
      (-1)
  in
  match Explain.explain g plan ~a:red ~b:y with
  | Explain.Stitch_row_unbounded -> ()
  | v -> Alcotest.failf "expected Stitch_row_unbounded, got %s" (Explain.verdict_to_string v)

let test_row_too_large () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let bdim = Table.fresh tab in
  (* row ub = 100k floats = 400 kB >> 48 kB shared memory *)
  let s = Table.fresh ~ub:100_000 tab in
  let x = B.param g ~name:"x" [| bdim; s |] Dtype.F32 in
  let y = B.softmax g x in
  Graph.set_outputs g [ y ];
  let plan = Planner.plan g in
  let red =
    Graph.fold g
      (fun acc i -> match i.Graph.op with Ir.Op.Reduce _ -> i.Graph.id | _ -> acc)
      (-1)
  in
  match Explain.explain g plan ~a:red ~b:y with
  | Explain.Stitch_row_too_large (need, budget) ->
      Alcotest.(check bool) "reports need > budget" true (need > budget)
  | v -> Alcotest.failf "expected Stitch_row_too_large, got %s" (Explain.verdict_to_string v)

let () =
  Alcotest.run "explain"
    [
      ( "verdicts",
        [
          Alcotest.test_case "fused" `Quick test_fused;
          Alcotest.test_case "library blocks" `Quick test_library_blocks;
          Alcotest.test_case "not adjacent" `Quick test_domain_mismatch;
          Alcotest.test_case "reduce w/o stitch" `Quick test_reduce_blocks_without_stitch;
          Alcotest.test_case "unbounded row" `Quick test_unbounded_row_blocks_stitch;
          Alcotest.test_case "row too large" `Quick test_row_too_large;
        ] );
    ]
