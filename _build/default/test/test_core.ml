(* Tests for the end-to-end Disc pipeline: options, ablation configs all
   produce correct numerics, compile-time model, simulate API, and the
   constraint-coverage statistics. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Nd = Tensor.Nd
module Planner = Fusion.Planner
module Kernel = Codegen.Kernel
module Compiler = Disc.Compiler

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mlp_graph () =
  (* two dense layers with gelu and a final softmax *)
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh ~ub:256 tab in
  let x = B.param g ~name:"x" [| b; Sym.Static 16 |] Dtype.F32 in
  let w1 = B.param g ~name:"w1" [| Sym.Static 16; Sym.Static 32 |] Dtype.F32 in
  let w2 = B.param g ~name:"w2" [| Sym.Static 32; Sym.Static 8 |] Dtype.F32 in
  let h = B.gelu g (B.dot g x w1) in
  let y = B.softmax g (B.dot g h w2) in
  Graph.set_outputs g [ y ];
  (g, b)

let inputs b =
  [
    Nd.init [| b; 16 |] (fun i -> float_of_int ((i.(0) * 3) + i.(1)) /. 7.0);
    Nd.init [| 16; 32 |] (fun i -> Float.sin (float_of_int ((i.(0) * 32) + i.(1))));
    Nd.init [| 32; 8 |] (fun i -> Float.cos (float_of_int ((i.(0) * 8) + i.(1))));
  ]

let all_option_variants =
  [
    ("default", Compiler.default_options);
    ("no-fusion", { Compiler.default_options with planner = Planner.no_fusion_config });
    ("static-only", { Compiler.default_options with planner = Planner.static_only_config });
    ("no-products", { Compiler.default_options with planner = Planner.no_product_config });
    ("no-stitch", { Compiler.default_options with planner = Planner.no_stitch_config });
    ("no-speculation", { Compiler.default_options with codegen = Kernel.no_speculation_config });
    ("no-passes", { Compiler.default_options with run_graph_passes = false });
  ]

let test_all_variants_correct () =
  let reference =
    let g, _ = mlp_graph () in
    Ir.Interp.run g (inputs 5)
  in
  List.iter
    (fun (name, options) ->
      let g, _ = mlp_graph () in
      let c = Compiler.compile ~options g in
      let got, _ = Compiler.run c (inputs 5) in
      List.iter2
        (fun e o ->
          check_bool (name ^ " matches reference") true (Nd.equal_approx ~eps:1e-5 e o))
        reference got)
    all_option_variants

let test_fusion_variant_ordering () =
  (* kernels: no-fusion >= no-stitch >= default *)
  let kernels options =
    let g, _ = mlp_graph () in
    let c = Compiler.compile ~options g in
    List.length c.Compiler.plan.Fusion.Cluster.clusters
  in
  let kf = kernels Compiler.default_options in
  let kns = kernels { Compiler.default_options with planner = Planner.no_stitch_config } in
  let knf = kernels { Compiler.default_options with planner = Planner.no_fusion_config } in
  check_bool "default <= no-stitch" true (kf <= kns);
  check_bool "no-stitch < no-fusion" true (kns < knf)

let test_compile_time_model () =
  let g, _ = mlp_graph () in
  let c = Compiler.compile g in
  check_bool "compile time positive" true (c.Compiler.compile_time_ms > 0.0);
  (* more kernels => more compile time *)
  let g2, _ = mlp_graph () in
  let c2 =
    Compiler.compile ~options:{ Compiler.default_options with planner = Planner.no_fusion_config } g2
  in
  check_bool "unfused compiles slower" true
    (c2.Compiler.compile_time_ms > c.Compiler.compile_time_ms)

let test_simulate_needs_only_dims () =
  let g, b = mlp_graph () in
  let c = Compiler.compile g in
  let t_small = Compiler.simulated_latency_us c [ (b, 4) ] in
  let t_big = Compiler.simulated_latency_us c [ (b, 256) ] in
  check_bool "positive" true (t_small > 0.0);
  check_bool "monotone" true (t_big > t_small)

let test_latency_agrees_with_simulate () =
  let g, b = mlp_graph () in
  let c = Compiler.compile g in
  let t_run = Compiler.latency_us c (inputs 6) in
  let t_sim = Compiler.simulated_latency_us c [ (b, 6) ] in
  Alcotest.(check (float 1e-6)) "same" t_run t_sim

let test_stats_coverage () =
  let entry = Models.Suite.find "bert" in
  let built = entry.Models.Suite.build_tiny () in
  ignore (Ir.Passes.run_all built.Models.Common.graph);
  let s = Disc.Stats.coverage built.Models.Common.graph in
  (* bert has exactly two dynamic input dims; propagation must not
     create extra live classes *)
  check_int "two classes" 2 s.Disc.Stats.num_classes;
  check_bool "many dynamic slots" true (s.Disc.Stats.dynamic_dim_slots > 50);
  check_bool "sampling counted" true (s.Disc.Stats.total_pairs_sampled > 0)

let test_verify_runs_in_compile () =
  (* a corrupted graph must be rejected by compile *)
  let g, _ = mlp_graph () in
  let y = List.hd (Graph.outputs g) in
  (Graph.inst g y).Graph.args.(0) <- y;
  check_bool "compile rejects corrupt graph" true
    (try
       ignore (Compiler.compile g);
       false
     with Graph.Type_error _ -> true)

let prop_variants_agree_on_random_batches =
  QCheck.Test.make ~name:"all pipeline variants agree numerically" ~count:20
    QCheck.(int_range 1 32)
    (fun batch ->
      let reference =
        let g, _ = mlp_graph () in
        Ir.Interp.run g (inputs batch)
      in
      List.for_all
        (fun (_, options) ->
          let g, _ = mlp_graph () in
          let c = Compiler.compile ~options g in
          let got, _ = Compiler.run c (inputs batch) in
          List.for_all2 (Nd.equal_approx ~eps:1e-5) reference got)
        all_option_variants)

let () =
  Alcotest.run "core"
    [
      ( "pipeline",
        [
          Alcotest.test_case "all variants correct" `Quick test_all_variants_correct;
          Alcotest.test_case "fusion ordering" `Quick test_fusion_variant_ordering;
          Alcotest.test_case "compile-time model" `Quick test_compile_time_model;
          Alcotest.test_case "simulate from dims" `Quick test_simulate_needs_only_dims;
          Alcotest.test_case "latency = simulate" `Quick test_latency_agrees_with_simulate;
          Alcotest.test_case "stats coverage" `Quick test_stats_coverage;
          Alcotest.test_case "verify in compile" `Quick test_verify_runs_in_compile;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_variants_agree_on_random_batches ]);
    ]
