(* Randomized whole-pipeline hardening: generate structured graphs that
   exercise broadcast, reshape-through-products, reductions (stitch
   patterns), transposes and library ops; then check that every pipeline
   configuration produces exactly the interpreter's results at several
   random shapes, and that plan/schedule invariants hold. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Nd = Tensor.Nd
module Planner = Fusion.Planner
module Cluster = Fusion.Cluster

(* A generated model: builder (fresh graph each call) + dim names. *)
type gen_model = { build : unit -> Graph.t * (string * Sym.dim) list }

(* Random structured graph over [b, s, h] with h static. Operations are
   chosen to exercise every fusion-relevant op class while keeping
   shapes trackable: values live on F=[b,s,h], O=[b,s] or M=[m,h]
   (m = b*s via reshape). *)
let random_model (st : Random.State.t) : gen_model =
  let h = 4 * (1 + Random.State.int st 3) in
  let steps =
    List.init (4 + Random.State.int st 8) (fun _ -> Random.State.int st 100)
  in
  let build () =
    let g = Graph.create () in
    let tab = Graph.symtab g in
    let b = Table.fresh ~name:"b" ~lb:1 ~ub:64 tab in
    let s = Table.fresh ~name:"s" ~lb:1 ~ub:64 tab in
    let x = B.param g ~name:"x" [| b; s; Sym.Static h |] Dtype.F32 in
    let f_shape = [| b; s; Sym.Static h |] in
    (* pools of values per domain *)
    let fs = ref [ x ] in
    let pick st pool = List.nth !pool (Random.State.int st (List.length !pool)) in
    let st = Random.State.copy st in
    List.iter
      (fun choice ->
        let v =
          match choice mod 10 with
          | 0 -> B.add g (pick st fs) (pick st fs)
          | 1 -> B.mul g (pick st fs) (pick st fs)
          | 2 -> B.tanh g (pick st fs)
          | 3 -> B.gelu g (pick st fs)
          | 4 ->
              (* reduce last axis, broadcast back: a stitch pattern *)
              B.reduce_lastdim_keep g
                (if choice mod 3 = 0 then Op.R_max else Op.R_sum)
                (pick st fs)
          | 5 -> B.softmax g (pick st fs)
          | 6 ->
              (* round-trip through the merged [m, h] view *)
              let m = Table.fresh tab in
              let flat = B.reshape g (pick st fs) [| m; Sym.Static h |] in
              let act = B.logistic g flat in
              B.reshape g act f_shape
          | 7 ->
              (* transpose sandwich *)
              let t = B.transpose g (pick st fs) [| 1; 0; 2 |] in
              B.transpose g (B.abs g t) [| 1; 0; 2 |]
          | 8 ->
              (* a library op: project through a static dense layer *)
              let w =
                B.const g
                  (Nd.init [| h; h |] (fun i ->
                       Float.sin (float_of_int ((i.(0) * h) + i.(1)))))
              in
              B.dot g (pick st fs) w
          | _ ->
              (* broadcast a row constant and combine *)
              let c = B.const g (Nd.init [| h |] (fun i -> 0.1 *. float_of_int i.(0))) in
              B.add g (pick st fs) (B.broadcast_trailing g c ~out:f_shape)
        in
        fs := v :: !fs)
      steps;
    Graph.set_outputs g [ List.hd !fs ];
    (g, [ ("b", b); ("s", s) ])
  in
  { build }

let input_for (g : Graph.t) (bv, sv) seed =
  match Graph.parameters g with
  | [ (pid, _) ] ->
      let hdim =
        match (Graph.inst g pid).Graph.shape.(2) with
        | Sym.Static v -> v
        | _ -> assert false
      in
      Nd.init [| bv; sv; hdim |] (fun i ->
          Float.sin (float_of_int ((i.(0) * 131) + (i.(1) * 17) + i.(2) + seed)))
  | _ -> assert false

let pipeline_variants =
  [
    ("default", Planner.default_config);
    ("no-fusion", Planner.no_fusion_config);
    ("no-stitch", Planner.no_stitch_config);
    ("no-products", Planner.no_product_config);
    ("horizontal", Planner.horizontal_config);
  ]

let prop_all_pipelines_match_interp =
  QCheck.Test.make ~name:"structured graphs: all pipelines = interp at random shapes"
    ~count:60
    QCheck.(pair (int_bound 1_000_000) (pair (int_range 1 5) (int_range 1 9)))
    (fun (seed, (bv, sv)) ->
      let st = Random.State.make [| seed |] in
      let model = random_model st in
      let g_ref, _ = model.build () in
      let input = input_for g_ref (bv, sv) seed in
      let expected = Ir.Interp.run g_ref [ input ] in
      List.for_all
        (fun (_, planner) ->
          let g, _ = model.build () in
          let c =
            Disc.Compiler.compile
              ~options:{ Disc.Compiler.default_options with planner }
              g
          in
          let got, _ = Disc.Compiler.run c [ input ] in
          List.for_all2 (Nd.equal_approx ~eps:1e-5) expected got)
        pipeline_variants)

let prop_plan_invariants =
  QCheck.Test.make ~name:"structured graphs: plan invariants" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let model = random_model st in
      let g, _ = model.build () in
      ignore (Ir.Passes.run_all g);
      let plan = Planner.plan g in
      (* 1. partition: every live non-param/const inst in exactly one cluster *)
      let counts = Hashtbl.create 64 in
      List.iter
        (fun c ->
          List.iter
            (fun m ->
              Hashtbl.replace counts m (1 + Option.value (Hashtbl.find_opt counts m) ~default:0))
            c.Cluster.members)
        plan.Cluster.clusters;
      let partition_ok =
        Graph.fold g
          (fun ok i ->
            ok
            &&
            match i.Graph.op with
            | Op.Parameter _ | Op.Constant _ -> true
            | _ -> Option.value (Hashtbl.find_opt counts i.Graph.id) ~default:0 = 1)
          true
      in
      (* 2. schedule: producer clusters precede consumers *)
      let order = Hashtbl.create 16 in
      List.iteri (fun k c -> Hashtbl.replace order c.Cluster.cid k) plan.Cluster.clusters;
      let schedule_ok =
        List.for_all
          (fun c ->
            List.for_all
              (fun input ->
                match Hashtbl.find_opt plan.Cluster.cluster_of input with
                | None -> true
                | Some pc -> Hashtbl.find order pc < Hashtbl.find order c.Cluster.cid)
              c.Cluster.inputs)
          plan.Cluster.clusters
      in
      (* 3. library ops are always singletons *)
      let library_ok =
        List.for_all
          (fun c ->
            c.Cluster.kind <> Cluster.Library || List.length c.Cluster.members = 1)
          plan.Cluster.clusters
      in
      partition_ok && schedule_ok && library_ok)

let prop_fusion_never_increases_traffic =
  QCheck.Test.make ~name:"structured graphs: fusion never increases traffic or launches"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let model = random_model st in
      let measure planner =
        let g, dims = model.build () in
        ignore (Ir.Passes.run_all g);
        let plan = Planner.plan ~config:planner g in
        let exe = Runtime.Executable.compile g plan in
        let tab = Graph.symtab g in
        let bnd = Table.empty_binding () in
        List.iter (fun (_, d) -> Table.bind_dim tab bnd d 16) dims;
        Runtime.Executable.simulate exe bnd
      in
      let fused = measure Planner.default_config in
      let unfused = measure Planner.no_fusion_config in
      fused.Runtime.Profile.launches <= unfused.Runtime.Profile.launches
      && fused.Runtime.Profile.bytes_moved <= unfused.Runtime.Profile.bytes_moved)

let prop_roundtrip_structured =
  QCheck.Test.make ~name:"structured graphs: print/parse round trip" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let model = random_model st in
      let g1, _ = model.build () in
      let g2 = Ir.Parser.parse (Ir.Printer.to_string ~with_symbols:true g1) in
      let input = input_for g1 (2, 3) seed in
      let a = Ir.Interp.run g1 [ input ] and b = Ir.Interp.run g2 [ input ] in
      List.for_all2 (Nd.equal_approx ~eps:1e-6) a b)

let () =
  Alcotest.run "pipeline-random"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_all_pipelines_match_interp;
            prop_plan_invariants;
            prop_fusion_never_increases_traffic;
            prop_roundtrip_structured;
          ] );
    ]
