(* Tests for the RAL runtime: executable compilation, the data/cost
   split, profiles, peak-memory tracking, and the cost-only simulate
   path agreeing with the data-plane run. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Nd = Tensor.Nd
module Planner = Fusion.Planner
module Executable = Runtime.Executable
module Profile = Runtime.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

let softmax_model () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh ~name:"b" tab and s = Table.fresh ~name:"s" ~ub:1024 tab in
  let x = B.param g ~name:"x" [| b; s |] Dtype.F32 in
  let y = B.softmax g (B.mulf g x 2.0) in
  Graph.set_outputs g [ y ];
  (g, b, s)

let compile ?(planner = Planner.default_config) g =
  Executable.compile g (Planner.plan ~config:planner g)

let bind g dims =
  let tab = Graph.symtab g in
  let bnd = Table.empty_binding () in
  List.iter (fun (d, v) -> Table.bind_dim tab bnd d v) dims;
  bnd

let test_run_correct_and_shape_generic () =
  let g, _, _ = softmax_model () in
  let exe = compile g in
  List.iter
    (fun (rows, cols) ->
      let input = Nd.init [| rows; cols |] (fun i -> float_of_int ((i.(0) * 3) + i.(1))) in
      let expected = Ir.Interp.run g [ input ] in
      let got, _ = Executable.run exe [ input ] in
      List.iter2
        (fun e o -> check_bool "same" true (Nd.equal_approx ~eps:1e-6 e o))
        expected got)
    [ (1, 3); (2, 7); (5, 16); (3, 100) ]

let test_profile_counts () =
  let g, b, s = softmax_model () in
  let exe = compile g in
  let input = Nd.init [| 2; 8 |] (fun i -> float_of_int i.(1)) in
  let _, p = Executable.run exe [ input ] in
  check_int "one stitched kernel launch" 1 p.Profile.launches;
  check_bool "device time positive" true (p.Profile.device_us > 0.0);
  ignore (b, s)

let test_simulate_agrees_with_run_cost () =
  let g, b, s = softmax_model () in
  let exe = compile g in
  let input = Nd.init [| 4; 32 |] (fun i -> float_of_int (i.(0) + i.(1))) in
  let _, p_run = Executable.run exe [ input ] in
  let p_sim = Executable.simulate exe (bind g [ (b, 4); (s, 32) ]) in
  checkf "same device time" p_run.Profile.device_us p_sim.Profile.device_us;
  check_int "same launches" p_run.Profile.launches p_sim.Profile.launches;
  check_int "same traffic" p_run.Profile.bytes_moved p_sim.Profile.bytes_moved;
  check_int "same peak" p_run.Profile.peak_bytes p_sim.Profile.peak_bytes

let test_cost_binding_padding () =
  (* charging costs at a padded shape must increase simulated time but
     not change results *)
  let g, b, s = softmax_model () in
  let exe = compile g in
  let input = Nd.init [| 2; 100 |] (fun i -> float_of_int i.(1)) in
  let expected = Ir.Interp.run g [ input ] in
  let padded = bind g [ (b, 2); (s, 128) ] in
  let got, p_padded = Executable.run ~cost_binding:padded exe [ input ] in
  let _, p_exact = Executable.run exe [ input ] in
  List.iter2 (fun e o -> check_bool "data exact" true (Nd.equal_approx ~eps:1e-6 e o)) expected got;
  check_bool "padded cost >= exact cost" true
    (p_padded.Profile.device_us >= p_exact.Profile.device_us)

let test_peak_memory_liveness () =
  (* a long pointwise chain under fusion keeps peak = in + out (+ const);
     unfused, the runtime must still free dead intermediates so peak
     stays bounded by ~3 live tensors *)
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let n = Table.fresh tab in
  let x = B.param g ~name:"x" [| n |] Dtype.F32 in
  let rec chain v i = if i = 0 then v else chain (B.addf g v 1.0) (i - 1) in
  let y = chain x 10 in
  Graph.set_outputs g [ y ];
  let exe_unfused = compile ~planner:Planner.no_fusion_config g in
  let p = Executable.simulate exe_unfused (bind g [ (n, 1000) ]) in
  (* x + const + at most 2 simultaneously-live intermediates *)
  check_bool "liveness bounds peak" true (p.Profile.peak_bytes <= 4 * (1000 * 4) + 64)

let test_fusion_reduces_traffic_and_launches () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let n = Table.fresh tab in
  let x = B.param g ~name:"x" [| n |] Dtype.F32 in
  let rec chain v i = if i = 0 then v else chain (B.tanh g v) (i - 1) in
  Graph.set_outputs g [ chain x 8 ];
  let fused = compile g in
  let unfused = compile ~planner:Planner.no_fusion_config g in
  let bnd = bind g [ (n, 100000) ] in
  let pf = Executable.simulate fused bnd in
  let pu = Executable.simulate unfused bnd in
  check_int "fused: one launch" 1 pf.Profile.launches;
  check_int "unfused: eight launches" 8 pu.Profile.launches;
  check_bool "fused moves 8x less" true
    (pu.Profile.bytes_moved = 8 * pf.Profile.bytes_moved);
  check_bool "fused faster" true (Profile.total_us pf < Profile.total_us pu)

let test_host_overhead_accounting () =
  let g, b, s = softmax_model () in
  let plan = Planner.plan ~config:Planner.no_fusion_config g in
  let exe_cheap = Executable.compile ~host_overhead_us:0.1 g plan in
  let exe_dear = Executable.compile ~host_overhead_us:10.0 g plan in
  let bnd = bind g [ (b, 2); (s, 16) ] in
  let pc = Executable.simulate exe_cheap bnd in
  let pd = Executable.simulate exe_dear bnd in
  checkf "same device time" pc.Profile.device_us pd.Profile.device_us;
  check_bool "host cost scales" true
    (pd.Profile.host_us -. pc.Profile.host_us > 9.0 *. float_of_int pc.Profile.launches *. 0.9)

let test_multi_output_graph () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let n = Table.fresh tab in
  let x = B.param g ~name:"x" [| n |] Dtype.F32 in
  let a = B.exp g x and b' = B.reduce_sum g x ~dims:[ 0 ] in
  Graph.set_outputs g [ a; b' ];
  let exe = compile g in
  let input = Nd.of_array [| 4 |] [| 1.; 2.; 3.; 4. |] in
  let outs, _ = Executable.run exe [ input ] in
  match outs with
  | [ oa; ob ] ->
      check_bool "exp out" true (Nd.equal_approx ~eps:1e-6 oa (Tensor.Ops_ref.exp input));
      checkf "sum out" 10.0 (Nd.to_scalar ob)
  | _ -> Alcotest.fail "two outputs"

let test_profile_merge () =
  let p1 = Profile.create () in
  Profile.add p1 ~kname:"a" ~kind:"kLoop" ~version_tag:"g" ~time_us:5.0 ~host_us:1.0
    ~bytes:100 ~flops:10.0;
  Profile.note_live_bytes p1 500;
  let p2 = Profile.create () in
  Profile.add p2 ~kname:"b" ~kind:"kLoop" ~version_tag:"g" ~time_us:7.0 ~host_us:2.0
    ~bytes:200 ~flops:20.0;
  Profile.note_live_bytes p2 300;
  Profile.merge p1 p2;
  checkf "summed device" 12.0 p1.Profile.device_us;
  check_int "summed launches" 2 p1.Profile.launches;
  check_int "max peak" 500 p1.Profile.peak_bytes;
  check_int "records kept" 2 (List.length p1.Profile.records)

let prop_run_equals_interp_on_random_shapes =
  QCheck.Test.make ~name:"compiled run = interpreter across shapes" ~count:40
    QCheck.(pair (int_range 1 6) (int_range 1 24))
    (fun (rows, cols) ->
      let g, _, _ = softmax_model () in
      let exe = compile g in
      let input =
        Nd.init [| rows; cols |] (fun i -> float_of_int (((i.(0) * 7) + i.(1)) mod 13) /. 3.0)
      in
      let expected = Ir.Interp.run g [ input ] in
      let got, _ = Executable.run exe [ input ] in
      List.for_all2 (Nd.equal_approx ~eps:1e-6) expected got)

let prop_simulate_latency_monotone_in_shape =
  QCheck.Test.make ~name:"bigger shapes never simulate faster" ~count:40
    QCheck.(pair (int_range 1 16) (int_range 1 128))
    (fun (b0, s0) ->
      let g, b, s = softmax_model () in
      let exe = compile g in
      let t1 = Profile.total_us (Executable.simulate exe (bind g [ (b, b0); (s, s0) ])) in
      let t2 =
        Profile.total_us (Executable.simulate exe (bind g [ (b, 2 * b0); (s, 2 * s0) ]))
      in
      t2 >= t1)

let () =
  Alcotest.run "runtime"
    [
      ( "executable",
        [
          Alcotest.test_case "shape-generic correctness" `Quick test_run_correct_and_shape_generic;
          Alcotest.test_case "profile counts" `Quick test_profile_counts;
          Alcotest.test_case "simulate = run cost" `Quick test_simulate_agrees_with_run_cost;
          Alcotest.test_case "cost-binding padding" `Quick test_cost_binding_padding;
          Alcotest.test_case "peak memory liveness" `Quick test_peak_memory_liveness;
          Alcotest.test_case "fusion saves traffic" `Quick test_fusion_reduces_traffic_and_launches;
          Alcotest.test_case "host overhead" `Quick test_host_overhead_accounting;
          Alcotest.test_case "multi output" `Quick test_multi_output_graph;
          Alcotest.test_case "profile merge" `Quick test_profile_merge;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_run_equals_interp_on_random_shapes; prop_simulate_latency_monotone_in_shape ]
      );
    ]
