(* Tests for the compile-time/runtime combined codegen: speculation
   version generation, runtime guard selection, launch dimensions, and
   the work (cost) descriptors. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Cluster = Fusion.Cluster
module Planner = Fusion.Planner
module Kernel = Codegen.Kernel
module Device = Gpusim.Device
module Cost = Gpusim.Cost

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* one fused pointwise kernel over [b, s] with a scalar chain *)
let pointwise_kernel () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab and s = Table.fresh tab in
  let x = B.param g ~name:"x" [| b; s |] Dtype.F32 in
  let y = B.exp g (B.addf g x 1.0) in
  Graph.set_outputs g [ y ];
  let plan = Planner.plan g in
  match plan.Cluster.clusters with
  | [ c ] -> (g, b, s, Kernel.build g Kernel.default_config c)
  | _ -> Alcotest.fail "expected one cluster"

let softmax_kernel () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab and s = Table.fresh ~ub:1024 tab in
  let x = B.param g ~name:"x" [| b; s |] Dtype.F32 in
  let y = B.softmax g x in
  Graph.set_outputs g [ y ];
  let plan = Planner.plan g in
  match plan.Cluster.clusters with
  | [ c ] -> (g, b, s, Kernel.build g Kernel.default_config c)
  | _ -> Alcotest.fail "expected one stitched cluster"

let bind g dims =
  let tab = Graph.symtab g in
  let bnd = Table.empty_binding () in
  List.iter (fun (d, v) -> Table.bind_dim tab bnd d v) dims;
  bnd

let test_version_generation () =
  let _, _, _, k = pointwise_kernel () in
  (* no reduce: axes are vec4 x persistent = 4 versions *)
  check_int "4 versions" 4 (List.length k.Kernel.versions);
  let _, _, _, ks = softmax_kernel () in
  check_int "8 versions with reduce axis" 8 (List.length ks.Kernel.versions);
  (* generic last *)
  check_string "generic last" "generic"
    (List.nth ks.Kernel.versions (List.length ks.Kernel.versions - 1)).Kernel.tag

let test_no_speculation_single_version () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s |] Dtype.F32 in
  let y = B.exp g x in
  Graph.set_outputs g [ y ];
  let plan = Planner.plan g in
  let c = List.hd plan.Cluster.clusters in
  let k = Kernel.build g Kernel.no_speculation_config c in
  check_int "only generic" 1 (List.length k.Kernel.versions);
  check_string "generic" "generic" (List.hd k.Kernel.versions).Kernel.tag

let test_vectorization_guard () =
  let g, b, s, k = pointwise_kernel () in
  (* innermost = s; divisible by 4 -> vectorized version selected *)
  let l = Kernel.launch_for g Device.a10 (bind g [ (b, 2); (s, 64) ]) k in
  check_bool "vec4 selected" true l.Kernel.version.Kernel.vectorized;
  let l = Kernel.launch_for g Device.a10 (bind g [ (b, 2); (s, 63) ]) k in
  check_bool "vec4 rejected on odd innermost" false l.Kernel.version.Kernel.vectorized

let test_tree_reduce_guard () =
  let g, b, s, k = softmax_kernel () in
  let l = Kernel.launch_for g Device.a10 (bind g [ (b, 4); (s, 128) ]) k in
  check_bool "tree reduce on pow2 row" true l.Kernel.version.Kernel.tree_reduce;
  let l = Kernel.launch_for g Device.a10 (bind g [ (b, 4); (s, 100) ]) k in
  check_bool "no tree reduce on 100" false l.Kernel.version.Kernel.tree_reduce

let test_persistent_guard () =
  let g, b, s, k = pointwise_kernel () in
  let small = Kernel.launch_for g Device.a10 (bind g [ (b, 1); (s, 64) ]) k in
  check_bool "persistent on small domain" true small.Kernel.version.Kernel.persistent;
  let large = Kernel.launch_for g Device.a10 (bind g [ (b, 4096); (s, 512) ]) k in
  check_bool "not persistent on large domain" false large.Kernel.version.Kernel.persistent

let test_launch_dims () =
  let g, b, s, k = pointwise_kernel () in
  let l = Kernel.launch_for g Device.a10 (bind g [ (b, 8); (s, 1024 ) ]) k in
  check_int "domain numel" 8192 l.Kernel.domain_numel;
  check_int "blocks = numel / (256*4)" 8 l.Kernel.blocks;
  (* stitch kernels: one block per outer row *)
  let g, b, s, ks = softmax_kernel () in
  let l = Kernel.launch_for g Device.a10 (bind g [ (b, 16); (s, 128) ]) ks in
  check_int "row" 128 l.Kernel.row;
  check_int "one block per row" 16 l.Kernel.blocks

let test_fused_traffic_is_boundary_only () =
  (* x -> +1 -> exp -> out : the intermediate (+1) result never touches
     global memory. bytes = in + out at f32. *)
  let g, b, s, k = pointwise_kernel () in
  let bnd = bind g [ (b, 2); (s, 100) ] in
  let l = Kernel.launch_for g Device.a10 bnd k in
  let w = Kernel.work_of g bnd k l in
  (* the +1.0 scalar constant is also a (4-byte) kernel input *)
  check_int "read = input + scalar const" ((2 * 100 * 4) + 4) w.Cost.bytes_read;
  check_int "write = output" (2 * 100 * 4) w.Cost.bytes_written

let test_gather_charges_rows_not_table () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let n = Table.fresh tab in
  let table = B.param g ~name:"table" [| Sym.Static 50000; Sym.Static 64 |] Dtype.F32 in
  let ids = B.param g ~name:"ids" [| n |] Dtype.I32 in
  let got = B.gather g table ids in
  Graph.set_outputs g [ got ];
  let plan = Planner.plan g in
  let c = List.hd plan.Cluster.clusters in
  let k = Kernel.build g Kernel.default_config c in
  let bnd = bind g [ (n, 32) ] in
  let l = Kernel.launch_for g Device.a10 bnd k in
  let w = Kernel.work_of g bnd k l in
  (* 32 rows x 64 floats + 32 i32 ids, NOT the 12.8MB table *)
  check_int "gather reads looked-up rows" ((32 * 64 * 4) + (32 * 4)) w.Cost.bytes_read

let test_library_gemm_work () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let m = Table.fresh tab in
  let x = B.param g ~name:"x" [| m; Sym.Static 256 |] Dtype.F32 in
  let wt = B.param g ~name:"w" [| Sym.Static 256; Sym.Static 512 |] Dtype.F32 in
  let y = B.dot g x wt in
  Graph.set_outputs g [ y ];
  let plan = Planner.plan g in
  let c = List.hd plan.Cluster.clusters in
  let bnd = bind g [ (m, 64) ] in
  let w = Kernel.library_work g bnd c in
  Alcotest.(check (float 1.0)) "gemm flops" (2.0 *. 64.0 *. 512.0 *. 256.0) w.Cost.flops;
  check_int "gemm reads A and B" ((64 * 256 * 4) + (256 * 512 * 4)) w.Cost.bytes_read

let test_speculation_lowers_time () =
  let g, b, s, k = pointwise_kernel () in
  (* big memory-bound shape so bandwidth efficiency dominates *)
  let bnd = bind g [ (b, 512); (s, 4096) ] in
  let l = Kernel.launch_for g Device.a10 bnd k in
  let w_spec = Kernel.work_of g bnd k l in
  let k_generic =
    Kernel.build g Kernel.no_speculation_config k.Kernel.cluster
  in
  let l_g = Kernel.launch_for g Device.a10 bnd k_generic in
  let w_gen = Kernel.work_of g bnd k_generic l_g in
  let t_spec = Cost.kernel_time_us Device.a10 w_spec in
  let t_gen = Cost.kernel_time_us Device.a10 w_gen in
  check_bool "vectorized faster" true (t_spec < t_gen)

let test_eval_matches_interp () =
  let g, b, s, k = pointwise_kernel () in
  ignore (b, s);
  let input = Tensor.Nd.init [| 3; 8 |] (fun i -> float_of_int ((i.(0) * 8) + i.(1)) /. 5.0) in
  let expected = Ir.Interp.run g [ input ] in
  let bnd = Ir.Interp.bind_inputs g [ input ] in
  let values = Hashtbl.create 8 in
  List.iter2
    (fun (pid, _) nd -> Hashtbl.replace values pid nd)
    (Graph.parameters g) [ input ];
  Graph.iter g (fun i ->
      match i.Graph.op with
      | Op.Constant nd -> Hashtbl.replace values i.Graph.id nd
      | _ -> ());
  let outs = Kernel.eval g bnd k (Hashtbl.find values) in
  match (expected, outs) with
  | [ e ], [ (_, got) ] ->
      check_bool "kernel eval = interp" true (Tensor.Nd.equal_approx ~eps:1e-9 e got)
  | _ -> Alcotest.fail "single output expected"

(* Cost-model sanity properties. *)

let prop_time_monotone_in_bytes =
  QCheck.Test.make ~name:"kernel time monotone in traffic" ~count:100
    QCheck.(pair (int_range 1 1000) (int_range 1 1000))
    (fun (a, bb) ->
      let lo = min a bb * 4096 and hi = max a bb * 4096 in
      let w b = { Cost.default_work with Cost.bytes_read = b; blocks = 512 } in
      Cost.kernel_time_us Device.a10 (w lo) <= Cost.kernel_time_us Device.a10 (w hi))

let prop_t4_slower_than_a10 =
  QCheck.Test.make ~name:"T4 never faster than A10 on same work" ~count:100
    QCheck.(pair (int_range 1 2000) (int_range 0 10))
    (fun (kb, flop_scale) ->
      let w =
        {
          Cost.default_work with
          Cost.bytes_read = kb * 4096;
          flops = float_of_int (flop_scale * kb) *. 1e5;
          blocks = 512;
        }
      in
      Cost.kernel_time_us Device.t4 w >= Cost.kernel_time_us Device.a10 w)

let prop_occupancy_bounds =
  QCheck.Test.make ~name:"occupancy in (0, 1]" ~count:100
    QCheck.(int_range 1 100000)
    (fun blocks ->
      let w = { Cost.default_work with Cost.blocks } in
      let o = Cost.occupancy Device.a10 w in
      o > 0.0 && o <= 1.0)

let prop_gemm_efficiency_ramps =
  QCheck.Test.make ~name:"bigger GEMM tiles -> higher efficiency" ~count:50
    QCheck.(int_range 1 10)
    (fun scale ->
      let small = Cost.gemm_work ~batch:1 ~m:(8 * scale) ~n:256 ~k:256 ~elem_bytes:4 in
      let big = Cost.gemm_work ~batch:1 ~m:(128 * scale) ~n:256 ~k:256 ~elem_bytes:4 in
      big.Cost.compute_efficiency >= small.Cost.compute_efficiency)

let () =
  Alcotest.run "codegen"
    [
      ( "versions",
        [
          Alcotest.test_case "generation" `Quick test_version_generation;
          Alcotest.test_case "no speculation" `Quick test_no_speculation_single_version;
        ] );
      ( "guards",
        [
          Alcotest.test_case "vectorization" `Quick test_vectorization_guard;
          Alcotest.test_case "tree reduce" `Quick test_tree_reduce_guard;
          Alcotest.test_case "persistent" `Quick test_persistent_guard;
          Alcotest.test_case "launch dims" `Quick test_launch_dims;
        ] );
      ( "work",
        [
          Alcotest.test_case "boundary traffic" `Quick test_fused_traffic_is_boundary_only;
          Alcotest.test_case "gather rows" `Quick test_gather_charges_rows_not_table;
          Alcotest.test_case "library gemm" `Quick test_library_gemm_work;
          Alcotest.test_case "speculation lowers time" `Quick test_speculation_lowers_time;
          Alcotest.test_case "eval matches interp" `Quick test_eval_matches_interp;
        ] );
      ( "cost properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_time_monotone_in_bytes;
            prop_t4_slower_than_a10;
            prop_occupancy_bounds;
            prop_gemm_efficiency_ramps;
          ] );
    ]
