(* Unit + property tests for the tensor substrate (shapes, ndarrays,
   reference op semantics). *)

module Shape = Tensor.Shape
module Nd = Tensor.Nd
module Ops = Tensor.Ops_ref
module Dtype = Tensor.Dtype

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let nd_testable = Alcotest.testable Nd.pp (fun a b -> Nd.equal_approx ~eps:1e-9 a b)
let nd_approx eps = Alcotest.testable Nd.pp (fun a b -> Nd.equal_approx ~eps a b)

(* --- Shape ------------------------------------------------------------- *)

let test_numel () =
  check_int "numel 2x3x4" 24 (Shape.numel [| 2; 3; 4 |]);
  check_int "numel scalar" 1 (Shape.numel [||]);
  check_int "numel with 0" 0 (Shape.numel [| 4; 0 |])

let test_strides () =
  Alcotest.(check (array int)) "strides 2x3x4" [| 12; 4; 1 |] (Shape.strides [| 2; 3; 4 |]);
  Alcotest.(check (array int)) "strides scalar" [||] (Shape.strides [||])

let test_index_roundtrip () =
  let s = [| 2; 3; 4 |] in
  for lin = 0 to Shape.numel s - 1 do
    check_int "roundtrip" lin (Shape.linear_of_index s (Shape.index_of_linear s lin))
  done

let test_broadcast_shapes () =
  Alcotest.(check (array int)) "trailing" [| 2; 3; 4 |]
    (Shape.broadcast [| 2; 3; 4 |] [| 4 |]);
  Alcotest.(check (array int)) "ones" [| 2; 3 |] (Shape.broadcast [| 2; 1 |] [| 1; 3 |]);
  Alcotest.(check (array int)) "scalar" [| 5 |] (Shape.broadcast [||] [| 5 |]);
  Alcotest.check_raises "incompatible" (Shape.Shape_error "cannot broadcast [2] with [3]")
    (fun () -> ignore (Shape.broadcast [| 2 |] [| 3 |]))

let test_concat_dim () =
  Alcotest.(check (array int)) "axis0" [| 5; 3 |]
    (Shape.concat_dim [| 2; 3 |] [| 3; 3 |] ~axis:0);
  Alcotest.check_raises "mismatch"
    (Shape.Shape_error "concat non-axis dim mismatch [2x3] vs [3x4]") (fun () ->
      ignore (Shape.concat_dim [| 2; 3 |] [| 3; 4 |] ~axis:0))

let test_transpose_shape () =
  Alcotest.(check (array int)) "perm" [| 4; 2; 3 |]
    (Shape.transpose [| 2; 3; 4 |] [| 2; 0; 1 |])

(* --- Nd ----------------------------------------------------------------- *)

let test_init_get () =
  let t = Nd.init [| 2; 3 |] (fun idx -> float_of_int ((idx.(0) * 10) + idx.(1))) in
  check_float "get [1;2]" 12.0 (Nd.get t [| 1; 2 |]);
  check_float "get [0;0]" 0.0 (Nd.get t [| 0; 0 |]);
  check_int "numel" 6 (Nd.numel t)

let test_byte_size () =
  let t = Nd.create ~dtype:Dtype.F16 [| 2; 3 |] 0.0 in
  check_int "f16 bytes" 12 (Nd.byte_size t);
  let t = Nd.create ~dtype:Dtype.I64 [| 2; 3 |] 0.0 in
  check_int "i64 bytes" 48 (Nd.byte_size t)

let test_map2_broadcast () =
  let a = Nd.of_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let row = Nd.of_array [| 2 |] [| 10.; 20. |] in
  let r = Nd.map2 ( +. ) a row in
  Alcotest.check nd_testable "row broadcast"
    (Nd.of_array [| 2; 2 |] [| 11.; 22.; 13.; 24. |])
    r

let test_reshape_preserves_data () =
  let a = Nd.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let r = Nd.reshape a [| 3; 2 |] in
  check_float "row-major order kept" 3.0 (Nd.get r [| 1; 0 |])

(* --- Ops_ref ------------------------------------------------------------ *)

let test_elementwise () =
  let a = Nd.of_array [| 3 |] [| 1.; 4.; 9. |] in
  Alcotest.check nd_testable "sqrt" (Nd.of_array [| 3 |] [| 1.; 2.; 3. |]) (Ops.sqrt a);
  Alcotest.check nd_testable "neg" (Nd.of_array [| 3 |] [| -1.; -4.; -9. |]) (Ops.neg a);
  let r = Ops.rsqrt (Nd.of_array [| 2 |] [| 4.; 16. |]) in
  Alcotest.check nd_testable "rsqrt" (Nd.of_array [| 2 |] [| 0.5; 0.25 |]) r

let test_erf_bounds () =
  check_bool "erf(0)=0" true (Float.abs (Ops.erf 0.0) < 1e-7);
  check_bool "erf(3)~1" true (Ops.erf 3.0 > 0.9999);
  check_bool "odd" true (Float.abs (Ops.erf (-1.5) +. Ops.erf 1.5) < 1e-7)

let test_compare_select () =
  let a = Nd.of_array [| 3 |] [| 1.; 5.; 3. |] in
  let b = Nd.of_array [| 3 |] [| 2.; 2.; 3. |] in
  let p = Ops.compare Ops.Gt a b in
  Alcotest.check nd_testable "gt" (Nd.of_array ~dtype:Dtype.Bool [| 3 |] [| 0.; 1.; 0. |]) p;
  let s = Ops.select ~pred:p ~on_true:a ~on_false:b in
  Alcotest.check nd_testable "select" (Nd.of_array [| 3 |] [| 2.; 5.; 3. |]) s

let test_broadcast_in_dim () =
  let col = Nd.of_array [| 2; 1 |] [| 1.; 2. |] in
  let r = Ops.broadcast_in_dim col ~out:[| 2; 3 |] ~dims:[| 0; 1 |] in
  Alcotest.check nd_testable "col to 2x3"
    (Nd.of_array [| 2; 3 |] [| 1.; 1.; 1.; 2.; 2.; 2. |])
    r;
  let row = Nd.of_array [| 3 |] [| 1.; 2.; 3. |] in
  let r = Ops.broadcast_in_dim row ~out:[| 2; 3 |] ~dims:[| 1 |] in
  Alcotest.check nd_testable "row to 2x3"
    (Nd.of_array [| 2; 3 |] [| 1.; 2.; 3.; 1.; 2.; 3. |])
    r

let test_transpose () =
  let a = Nd.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let r = Ops.transpose a [| 1; 0 |] in
  Alcotest.check nd_testable "2x3 -> 3x2"
    (Nd.of_array [| 3; 2 |] [| 1.; 4.; 2.; 5.; 3.; 6. |])
    r

let test_concat () =
  let a = Nd.of_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let b = Nd.of_array [| 1; 2 |] [| 5.; 6. |] in
  let r = Ops.concat [ a; b ] ~axis:0 in
  Alcotest.check nd_testable "axis0"
    (Nd.of_array [| 3; 2 |] [| 1.; 2.; 3.; 4.; 5.; 6. |])
    r;
  let c = Ops.concat [ a; a ] ~axis:1 in
  Alcotest.check nd_testable "axis1"
    (Nd.of_array [| 2; 4 |] [| 1.; 2.; 1.; 2.; 3.; 4.; 3.; 4. |])
    c

let test_slice () =
  let a = Nd.of_array [| 4 |] [| 0.; 1.; 2.; 3. |] in
  let r = Ops.slice a ~starts:[| 1 |] ~limits:[| 4 |] ~strides:[| 2 |] in
  Alcotest.check nd_testable "strided" (Nd.of_array [| 2 |] [| 1.; 3. |]) r

let test_pad () =
  let a = Nd.of_array [| 2 |] [| 1.; 2. |] in
  let r = Ops.pad a ~low:[| 1 |] ~high:[| 2 |] ~value:9.0 in
  Alcotest.check nd_testable "pad" (Nd.of_array [| 5 |] [| 9.; 1.; 2.; 9.; 9. |]) r

let test_reduce () =
  let a = Nd.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  Alcotest.check nd_testable "sum rows" (Nd.of_array [| 2 |] [| 6.; 15. |])
    (Ops.reduce Ops.R_sum a ~dims:[ 1 ]);
  Alcotest.check nd_testable "max cols" (Nd.of_array [| 3 |] [| 4.; 5.; 6. |])
    (Ops.reduce Ops.R_max a ~dims:[ 0 ]);
  Alcotest.check nd_testable "sum all" (Nd.scalar 21.0) (Ops.reduce Ops.R_sum a ~dims:[ 0; 1 ])

let test_matmul () =
  let a = Nd.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = Nd.of_array [| 3; 2 |] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  let r = Ops.matmul a b in
  Alcotest.check nd_testable "2x3 * 3x2"
    (Nd.of_array [| 2; 2 |] [| 58.; 64.; 139.; 154. |])
    r

let test_matmul_batched () =
  let a = Nd.init [| 2; 2; 2 |] (fun i -> float_of_int ((i.(0) * 4) + (i.(1) * 2) + i.(2))) in
  let b = Nd.init [| 2; 2; 2 |] (fun i -> float_of_int (((i.(0) * 4) + (i.(1) * 2) + i.(2)) * 2)) in
  let r = Ops.matmul a b in
  (* batch 0: [[0,1],[2,3]] x [[0,2],[4,6]] = [[4,6],[12,22]] *)
  check_float "b0 r00" 4.0 (Nd.get r [| 0; 0; 0 |]);
  check_float "b0 r11" 22.0 (Nd.get r [| 0; 1; 1 |]);
  (* batch 1: [[4,5],[6,7]] x [[8,10],[12,14]] = [[92,110],[132,158]] *)
  check_float "b1 r00" 92.0 (Nd.get r [| 1; 0; 0 |]);
  check_float "b1 r11" 158.0 (Nd.get r [| 1; 1; 1 |])

let test_matmul_broadcast_batch () =
  let a = Nd.init [| 3; 2; 4 |] (fun i -> float_of_int (i.(0) + i.(1) + i.(2))) in
  let b = Nd.init [| 4; 2 |] (fun i -> float_of_int (i.(0) - i.(1))) in
  let r = Ops.matmul a b in
  Alcotest.(check (array int)) "shape" [| 3; 2; 2 |] (Nd.shape r);
  (* spot-check against manual contraction *)
  let expect b0 i j =
    let acc = ref 0.0 in
    for k = 0 to 3 do
      acc := !acc +. (float_of_int (b0 + i + k) *. float_of_int (k - j))
    done;
    !acc
  in
  check_float "spot" (expect 2 1 0) (Nd.get r [| 2; 1; 0 |])

let test_conv2d () =
  (* 1x3x3x1 input of ones, 2x2 sum filter, stride 1, no padding -> all 4s *)
  let x = Nd.create [| 1; 3; 3; 1 |] 1.0 in
  let w = Nd.create [| 2; 2; 1; 1 |] 1.0 in
  let r = Ops.conv2d x w ~strides:(1, 1) ~padding:(0, 0) in
  Alcotest.check nd_testable "sum filter" (Nd.create [| 1; 2; 2; 1 |] 4.0) r;
  (* with padding 1 the corners see only 1 contribution *)
  let rp = Ops.conv2d x w ~strides:(1, 1) ~padding:(1, 1) in
  Alcotest.(check (array int)) "padded shape" [| 1; 4; 4; 1 |] (Nd.shape rp);
  check_float "corner" 1.0 (Nd.get rp [| 0; 0; 0; 0 |]);
  check_float "center" 4.0 (Nd.get rp [| 0; 1; 1; 0 |])

let test_gather () =
  let table = Nd.of_array [| 3; 2 |] [| 0.; 1.; 10.; 11.; 20.; 21. |] in
  let idx = Nd.of_array ~dtype:Dtype.I32 [| 2 |] [| 2.; 0. |] in
  let r = Ops.gather table idx in
  Alcotest.check nd_testable "rows 2,0"
    (Nd.of_array [| 2; 2 |] [| 20.; 21.; 0.; 1. |])
    r

let test_iota () =
  let r = Ops.iota [| 2; 3 |] ~dim:1 in
  Alcotest.check nd_testable "dim1"
    (Nd.of_array [| 2; 3 |] [| 0.; 1.; 2.; 0.; 1.; 2. |])
    r

(* --- Property tests ----------------------------------------------------- *)

let small_shape_gen =
  QCheck.Gen.(list_size (int_range 0 3) (int_range 1 4) >|= Array.of_list)

let arb_shape = QCheck.make ~print:Shape.to_string small_shape_gen

let prop_index_roundtrip =
  QCheck.Test.make ~name:"linear/multi index roundtrip" ~count:200 arb_shape (fun s ->
      let n = Shape.numel s in
      n = 0
      || List.for_all
           (fun lin -> Shape.linear_of_index s (Shape.index_of_linear s lin) = lin)
           (List.init (min n 50) (fun i -> i * ((n / min n 50) + 0)))
      )

let prop_broadcast_commutes =
  QCheck.Test.make ~name:"add with broadcast commutes" ~count:100
    (QCheck.pair arb_shape arb_shape) (fun (sa, sb) ->
      match Shape.broadcast sa sb with
      | exception Shape.Shape_error _ -> QCheck.assume_fail ()
      | _ ->
          let a = Nd.init sa (fun i -> float_of_int (Array.fold_left ( + ) 1 i)) in
          let b = Nd.init sb (fun i -> float_of_int (Array.fold_left ( + ) 2 i * 3)) in
          Nd.equal_approx (Ops.add a b) (Ops.add b a))

let prop_transpose_involutive =
  QCheck.Test.make ~name:"transpose twice is identity" ~count:100 arb_shape (fun s ->
      QCheck.assume (Shape.rank s >= 1);
      let perm = Array.init (Shape.rank s) (fun i -> Shape.rank s - 1 - i) in
      let a = Nd.init s (fun i -> float_of_int (Shape.linear_of_index s i)) in
      Nd.equal_approx (Ops.transpose (Ops.transpose a perm) perm) a)

let prop_reduce_sum_total =
  QCheck.Test.make ~name:"reduce_sum over all dims = fold" ~count:100 arb_shape (fun s ->
      let a = Nd.init s (fun i -> float_of_int (Array.fold_left ( + ) 0 i)) in
      let dims = List.init (Shape.rank s) (fun i -> i) in
      let r = Ops.reduce Ops.R_sum a ~dims in
      let total = Nd.fold ( +. ) 0.0 a in
      Float.abs (Nd.to_scalar r -. total) < 1e-6)

let prop_softmax_like =
  QCheck.Test.make ~name:"exp/sum normalizes rows" ~count:50
    QCheck.(pair (int_range 1 4) (int_range 1 6))
    (fun (rows, cols) ->
      let a = Nd.init [| rows; cols |] (fun i -> float_of_int ((i.(0) * 7) + i.(1)) /. 3.0) in
      let e = Ops.exp a in
      let s = Ops.reduce Ops.R_sum e ~dims:[ 1 ] in
      let norm = Ops.div e (Nd.reshape s [| rows; 1 |]) in
      let rowsum = Ops.reduce Ops.R_sum norm ~dims:[ 1 ] in
      Nd.fold (fun ok v -> ok && Float.abs (v -. 1.0) < 1e-6) true rowsum)

let prop_pad_then_slice =
  QCheck.Test.make ~name:"slice undoes pad" ~count:100
    QCheck.(triple (int_range 1 5) (int_range 0 3) (int_range 0 3))
    (fun (n, lo, hi) ->
      let a = Nd.init [| n |] (fun i -> float_of_int i.(0)) in
      let p = Ops.pad a ~low:[| lo |] ~high:[| hi |] ~value:(-1.0) in
      let back = Ops.slice p ~starts:[| lo |] ~limits:[| lo + n |] ~strides:[| 1 |] in
      Nd.equal_approx back a)

let prop_matmul_identity =
  QCheck.Test.make ~name:"matmul by identity" ~count:50
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (m, k) ->
      let a = Nd.init [| m; k |] (fun i -> float_of_int ((i.(0) * 13) + i.(1))) in
      let id = Nd.init [| k; k |] (fun i -> if i.(0) = i.(1) then 1.0 else 0.0) in
      Nd.equal_approx (Ops.matmul a id) a)

let () =
  ignore nd_approx;
  Alcotest.run "tensor"
    [
      ( "shape",
        [
          Alcotest.test_case "numel" `Quick test_numel;
          Alcotest.test_case "strides" `Quick test_strides;
          Alcotest.test_case "index roundtrip" `Quick test_index_roundtrip;
          Alcotest.test_case "broadcast shapes" `Quick test_broadcast_shapes;
          Alcotest.test_case "concat dim" `Quick test_concat_dim;
          Alcotest.test_case "transpose shape" `Quick test_transpose_shape;
        ] );
      ( "nd",
        [
          Alcotest.test_case "init/get" `Quick test_init_get;
          Alcotest.test_case "byte size" `Quick test_byte_size;
          Alcotest.test_case "map2 broadcast" `Quick test_map2_broadcast;
          Alcotest.test_case "reshape data order" `Quick test_reshape_preserves_data;
        ] );
      ( "ops_ref",
        [
          Alcotest.test_case "elementwise" `Quick test_elementwise;
          Alcotest.test_case "erf" `Quick test_erf_bounds;
          Alcotest.test_case "compare/select" `Quick test_compare_select;
          Alcotest.test_case "broadcast_in_dim" `Quick test_broadcast_in_dim;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "slice" `Quick test_slice;
          Alcotest.test_case "pad" `Quick test_pad;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "matmul batched" `Quick test_matmul_batched;
          Alcotest.test_case "matmul broadcast batch" `Quick test_matmul_broadcast_batch;
          Alcotest.test_case "conv2d" `Quick test_conv2d;
          Alcotest.test_case "gather" `Quick test_gather;
          Alcotest.test_case "iota" `Quick test_iota;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_index_roundtrip;
            prop_broadcast_commutes;
            prop_transpose_involutive;
            prop_reduce_sum_total;
            prop_softmax_like;
            prop_pad_then_slice;
            prop_matmul_identity;
          ] );
    ]
