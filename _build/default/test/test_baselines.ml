(* Tests for the baseline executors: each system's dynamic-shape
   mechanism behaves as specified (padding, per-signature recompilation,
   overheads, fusion scope) and the end-to-end ordering matches the
   paper's findings. *)

module E = Baselines.Executor
module Systems = Baselines.Systems
module Suite = Models.Suite

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let device = Gpusim.Device.a10

let test_bucket () =
  check_int "1" 1 (E.bucket 1);
  check_int "2" 2 (E.bucket 2);
  check_int "3->4" 4 (E.bucket 3);
  check_int "100->128" 128 (E.bucket 100);
  check_int "128" 128 (E.bucket 128);
  check_int "129->256" 256 (E.bucket 129)

let test_registry () =
  check_int "eight systems" 8 (List.length Systems.all_strategies);
  check_int "seven baselines" 7 (List.length Systems.baselines_only);
  check_bool "unknown rejected" true
    (try
       ignore (Systems.by_name "nonexistent");
       false
     with Invalid_argument _ -> true)

let test_xla_pads_and_recompiles_per_bucket () =
  let entry = Suite.find "dien" in
  let xla = Systems.make "xla" (entry.Suite.build ()) in
  (* first call: new bucket -> compile stall; non-pow2 -> padded *)
  let r1 = xla.E.run ~device [ ("batch", 100); ("hist", 17) ] in
  check_bool "first bucket compiles" true (r1.E.compile_ms > 0.0);
  check_bool "padded" true r1.E.padded;
  (* same bucket (128, 32): no recompile *)
  let r2 = xla.E.run ~device [ ("batch", 120); ("hist", 20) ] in
  checkf "bucket cached" 0.0 r2.E.compile_ms;
  (* new bucket: recompile *)
  let r3 = xla.E.run ~device [ ("batch", 300); ("hist", 20) ] in
  check_bool "new bucket recompiles" true (r3.E.compile_ms > 0.0);
  (* exact pow2 shapes are not "padded" *)
  let r4 = xla.E.run ~device [ ("batch", 128); ("hist", 32) ] in
  check_bool "pow2 not padded" false r4.E.padded

let test_xla_padding_costs_time () =
  let entry = Suite.find "dien" in
  let xla = Systems.make "xla" (entry.Suite.build ()) in
  let just_over = xla.E.run ~device [ ("batch", 129); ("hist", 33) ] in
  let exactly = xla.E.run ~device [ ("batch", 256); ("hist", 64) ] in
  (* both run at the same padded cost shapes *)
  checkf "129 padded to 256 costs the same as 256"
    exactly.E.latency_us just_over.E.latency_us

let test_tvm_retunes_per_exact_shape () =
  let entry = Suite.find "dien" in
  let tvm = Systems.make "tvm" (entry.Suite.build ()) in
  let r1 = tvm.E.run ~device [ ("batch", 100); ("hist", 17) ] in
  check_bool "tuning on first shape" true (r1.E.compile_ms > 10_000.0);
  let r2 = tvm.E.run ~device [ ("batch", 100); ("hist", 17) ] in
  checkf "cached exact shape" 0.0 r2.E.compile_ms;
  let r3 = tvm.E.run ~device [ ("batch", 100); ("hist", 18) ] in
  check_bool "hist 17 -> 18 re-tunes" true (r3.E.compile_ms > 10_000.0);
  check_bool "cumulative compile tracked" true
    (tvm.E.total_compile_ms () >= r1.E.compile_ms +. r3.E.compile_ms)

let test_compile_once_systems () =
  let entry = Suite.find "dien" in
  List.iter
    (fun name ->
      let ex = Systems.make name (entry.Suite.build ()) in
      let r1 = ex.E.run ~device [ ("batch", 10); ("hist", 10) ] in
      let r2 = ex.E.run ~device [ ("batch", 11); ("hist", 13) ] in
      check_bool (name ^ " pays at most once") true (r1.E.compile_ms >= 0.0);
      checkf (name ^ " never recompiles") 0.0 r2.E.compile_ms)
    [ "bladedisc"; "tensorrt"; "inductor"; "onnxrt"; "torchscript"; "pytorch" ]

let test_pytorch_never_compiles () =
  let entry = Suite.find "dien" in
  let pt = Systems.make "pytorch" (entry.Suite.build ()) in
  let r = pt.E.run ~device [ ("batch", 10); ("hist", 10) ] in
  checkf "no compile" 0.0 r.E.compile_ms;
  checkf "no cumulative compile" 0.0 (pt.E.total_compile_ms ())

let test_overhead_ordering () =
  (* on a tiny-compute shape, latency ordering is driven by dispatch
     overheads: pytorch > torchscript > bladedisc *)
  let entry = Suite.find "dien" in
  let lat name =
    let ex = Systems.make name (entry.Suite.build ()) in
    (ex.E.run ~device [ ("batch", 1); ("hist", 2) ]).E.latency_us
  in
  let pt = lat "pytorch" and ts = lat "torchscript" and bd = lat "bladedisc" in
  check_bool "pytorch slowest" true (pt > ts);
  check_bool "disc fastest" true (ts > bd)

let test_disc_beats_all_on_benchmarks () =
  (* the paper's headline: on every benchmark point, BladeDISC is at
     least as fast as every baseline on both devices *)
  List.iter
    (fun device ->
      List.iter
        (fun entry ->
          let execs =
            List.map
              (fun s -> (s.E.s_name, E.make_from_strategy s (entry.Suite.build ())))
              Systems.all_strategies
          in
          let disc = List.assoc "bladedisc" execs in
          List.iter
            (fun env ->
              let d = (disc.E.run ~device env).E.latency_us in
              List.iter
                (fun (name, ex) ->
                  if name <> "bladedisc" then
                    let r = ex.E.run ~device env in
                    check_bool
                      (Printf.sprintf "%s >= disc on %s/%s" name entry.Suite.name
                         device.Gpusim.Device.name)
                      true
                      (r.E.latency_us >= d *. 0.99))
                execs)
            entry.Suite.bench_dims)
        Suite.all)
    [ Gpusim.Device.a10; Gpusim.Device.t4 ]
(* two devices x 7 models x shape points x 7 baselines *)


let test_speedup_bands () =
  (* average speedups over the benchmark grid stay within a factor-ish
     band of the paper's reported averages *)
  let expectations =
    (* name, paper average, tolerated band *)
    [
      ("pytorch", 3.54, 1.0); ("torchscript", 3.12, 0.9); ("tvm", 1.95, 0.6);
      ("onnxrt", 1.47, 0.45); ("xla", 1.24, 0.4); ("inductor", 2.93, 1.0);
      ("tensorrt", 1.46, 0.45);
    ]
  in
  let sums = Hashtbl.create 8 and counts = ref 0 in
  List.iter (fun (n, _, _) -> Hashtbl.replace sums n 0.0) expectations;
  List.iter
    (fun entry ->
      let execs =
        List.map
          (fun s -> (s.E.s_name, E.make_from_strategy s (entry.Suite.build ())))
          Systems.all_strategies
      in
      let disc = List.assoc "bladedisc" execs in
      List.iter
        (fun env ->
          incr counts;
          let d = (disc.E.run ~device env).E.latency_us in
          List.iter
            (fun (n, _, _) ->
              let r = (List.assoc n execs).E.run ~device env in
              Hashtbl.replace sums n (Hashtbl.find sums n +. (r.E.latency_us /. d)))
            expectations)
        entry.Suite.bench_dims)
    Suite.all;
  List.iter
    (fun (n, paper, band) ->
      let avg = Hashtbl.find sums n /. float_of_int !counts in
      check_bool
        (Printf.sprintf "%s avg %.2f within %.2f of paper %.2f" n avg band paper)
        true
        (Float.abs (avg -. paper) <= band))
    expectations

let test_profiles_attached () =
  let entry = Suite.find "crnn" in
  let ex = Systems.make "bladedisc" (entry.Suite.build ()) in
  let r = ex.E.run ~device [ ("batch", 2); ("width", 64) ] in
  check_bool "profile has launches" true (r.E.profile.Runtime.Profile.launches > 0);
  check_bool "latency = profile total" true
    (Float.abs (r.E.latency_us -. Runtime.Profile.total_us r.E.profile) < 1e-6)

let () =
  Alcotest.run "baselines"
    [
      ( "mechanisms",
        [
          Alcotest.test_case "bucket" `Quick test_bucket;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "xla buckets" `Quick test_xla_pads_and_recompiles_per_bucket;
          Alcotest.test_case "xla padding cost" `Quick test_xla_padding_costs_time;
          Alcotest.test_case "tvm re-tunes" `Quick test_tvm_retunes_per_exact_shape;
          Alcotest.test_case "compile-once systems" `Quick test_compile_once_systems;
          Alcotest.test_case "pytorch no compile" `Quick test_pytorch_never_compiles;
          Alcotest.test_case "overhead ordering" `Quick test_overhead_ordering;
          Alcotest.test_case "profiles attached" `Quick test_profiles_attached;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "disc wins everywhere" `Slow test_disc_beats_all_on_benchmarks;
          Alcotest.test_case "speedup bands" `Slow test_speedup_bands;
        ] );
    ]
