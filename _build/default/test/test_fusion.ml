(* Tests for the fusion planner: cluster formation under each shape
   oracle, kInput rooting, kStitch stitching of softmax/layernorm, cycle
   avoidance, and shared-memory gating. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op
module B = Ir.Builder
module Dtype = Tensor.Dtype
module Cluster = Fusion.Cluster
module Planner = Fusion.Planner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let plan_kinds plan =
  List.map (fun c -> c.Cluster.kind) plan.Cluster.clusters

(* x -> (x+1)*2 -> exp : one kLoop kernel *)
let pointwise_graph () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let s = Table.fresh tab in
  let x = B.param g ~name:"x" [| s; Sym.Static 16 |] Dtype.F32 in
  let y = B.exp g (B.mulf g (B.addf g x 1.0) 2.0) in
  Graph.set_outputs g [ y ];
  g

let softmax_graph ?(seq_ub = 512) () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh ~name:"batch" tab in
  let s = Table.fresh ~name:"seq" ~ub:seq_ub tab in
  let x = B.param g ~name:"x" [| b; s; Sym.Static 64 |] Dtype.F32 in
  let y = B.softmax g x in
  Graph.set_outputs g [ y ];
  g

let test_pointwise_single_kernel () =
  let g = pointwise_graph () in
  let plan = Planner.plan g in
  check_int "one kernel" 1 (Cluster.num_kernels plan);
  match plan.Cluster.clusters with
  | [ c ] ->
      Alcotest.(check string) "kLoop" "kLoop" (Cluster.kind_to_string c.Cluster.kind);
      (* members: add, mul, exp and the two scalar-broadcast-free consts
         are constants (not kernels) so only 3 computational insts + 2
         scalar constants fused? constants are opaque: they are inputs *)
      check_int "three pointwise members" 3
        (List.length
           (List.filter
              (fun m ->
                match (Graph.inst g m).op with
                | Op.Binary _ | Op.Unary _ -> true
                | _ -> false)
              c.Cluster.members))
  | _ -> Alcotest.fail "expected one cluster"

let test_no_fusion_config () =
  let g = pointwise_graph () in
  let plan = Planner.plan ~config:Planner.no_fusion_config g in
  (* add, mul, exp each their own kernel; constants don't count *)
  check_int "three kernels" 3 (Cluster.num_kernels plan)

let test_softmax_stitches_to_one_kernel () =
  let g = softmax_graph () in
  let plan = Planner.plan g in
  check_int "one stitched kernel" 1 (Cluster.num_kernels plan);
  check_int "kStitch" 1 (Cluster.count_kind plan Cluster.Stitch)

let test_softmax_without_stitch () =
  let g = softmax_graph () in
  let plan = Planner.plan ~config:Planner.no_stitch_config g in
  check_bool "more than one kernel" true (Cluster.num_kernels plan > 1);
  check_int "no kStitch" 0 (Cluster.count_kind plan Cluster.Stitch);
  (* the two reduces root kInput clusters *)
  check_bool "has kInput" true (Cluster.count_kind plan Cluster.Input >= 1)

let test_softmax_unbounded_row_blocks_stitch () =
  (* without an upper bound on the reduced dim, the row cannot be proven
     to fit in shared memory: stitch must not fire *)
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab in
  let s = Table.fresh tab in
  (* softmax over the *dynamic unbounded* last axis *)
  let x = B.param g ~name:"x" [| b; Sym.Static 8; s |] Dtype.F32 in
  let y = B.softmax g x in
  Graph.set_outputs g [ y ];
  let plan = Planner.plan g in
  check_int "no kStitch without bounds" 0 (Cluster.count_kind plan Cluster.Stitch)

let test_stitch_respects_budget () =
  let g = softmax_graph ~seq_ub:512 () in
  (* row is the static last axis (64 floats = 256B) -> fits even tiny *)
  let plan = Planner.plan ~config:{ Planner.default_config with shared_mem_bytes = 512 } g in
  check_int "fits in 512B" 1 (Cluster.count_kind plan Cluster.Stitch);
  let plan = Planner.plan ~config:{ Planner.default_config with shared_mem_bytes = 128 } g in
  check_int "does not fit in 128B" 0 (Cluster.count_kind plan Cluster.Stitch)

let test_library_never_fused () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let bdim = Table.fresh tab in
  let x = B.param g ~name:"x" [| bdim; Sym.Static 8 |] Dtype.F32 in
  let w = B.param g ~name:"w" [| Sym.Static 8; Sym.Static 8 |] Dtype.F32 in
  let h = B.relu g (B.dot g x w) in
  Graph.set_outputs g [ h ];
  let plan = Planner.plan g in
  check_int "dot is its own kernel" 1 (Cluster.count_kind plan Cluster.Library);
  check_int "two kernels total" 2 (Cluster.num_kernels plan)

let test_fusion_through_reshape_requires_products () =
  (* x:[b,s,64] -> relu -> reshape [m,64] -> tanh. With product facts the
     whole thing is one kLoop kernel; without them the reshape splits it. *)
  let build () =
    let g = Graph.create () in
    let tab = Graph.symtab g in
    let b = Table.fresh tab and s = Table.fresh tab and m = Table.fresh tab in
    let x = B.param g ~name:"x" [| b; s; Sym.Static 64 |] Dtype.F32 in
    let r = B.relu g x in
    let flat = B.reshape g r [| m; Sym.Static 64 |] in
    let y = B.tanh g flat in
    Graph.set_outputs g [ y ];
    g
  in
  let plan_full = Planner.plan (build ()) in
  check_int "one kernel with product facts" 1 (Cluster.num_kernels plan_full);
  let plan_nop = Planner.plan ~config:Planner.no_product_config (build ()) in
  check_bool "split without product facts" true (Cluster.num_kernels plan_nop > 1)

let test_static_oracle_on_dynamic_graph () =
  (* a fully dynamic graph: the static-only oracle cannot fuse anything *)
  let g = pointwise_graph () in
  let plan = Planner.plan ~config:Planner.static_only_config g in
  check_int "no fusion on dynamic shapes" 3 (Cluster.num_kernels plan);
  (* but on a static graph it fuses *)
  let g2 = Graph.create () in
  let x = B.param g2 ~name:"x" [| Sym.Static 4; Sym.Static 16 |] Dtype.F32 in
  let y = B.exp g2 (B.addf g2 x 1.0) in
  Graph.set_outputs g2 [ y ];
  let plan2 = Planner.plan ~config:Planner.static_only_config g2 in
  check_int "static shapes fuse" 1 (Cluster.num_kernels plan2)

let test_kinput_cluster () =
  (* exp(x) summed along last axis: elementwise fused into reduce *)
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab in
  let x = B.param g ~name:"x" [| b; Sym.Static 32 |] Dtype.F32 in
  let y = B.reduce_sum g (B.exp g x) ~dims:[ 1 ] in
  Graph.set_outputs g [ y ];
  let plan = Planner.plan ~config:Planner.no_stitch_config g in
  check_int "one kernel" 1 (Cluster.num_kernels plan);
  check_int "kInput" 1 (Cluster.count_kind plan Cluster.Input)

let test_layernorm_single_stitch () =
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let b = Table.fresh tab and s = Table.fresh ~ub:512 tab in
  let x = B.param g ~name:"x" [| b; s; Sym.Static 256 |] Dtype.F32 in
  let scale = B.const g (Tensor.Nd.create [| 256 |] 1.0) in
  let bias = B.const g (Tensor.Nd.create [| 256 |] 0.0) in
  let y = B.layernorm g x ~scale ~bias ~eps:1e-5 in
  Graph.set_outputs g [ y ];
  ignore (Ir.Passes.run_all g);
  let plan = Planner.plan g in
  check_int "layernorm is one kernel" 1 (Cluster.num_kernels plan);
  check_int "kStitch" 1 (Cluster.count_kind plan Cluster.Stitch)

let test_cycle_avoidance () =
  (* diamond with a library op on one path: fusing head and tail into one
     cluster would swallow a path through dot -> must be rejected *)
  let g = Graph.create () in
  let tab = Graph.symtab g in
  let bdim = Table.fresh tab in
  let x = B.param g ~name:"x" [| bdim; Sym.Static 8 |] Dtype.F32 in
  let a = B.exp g x in
  let w = B.param g ~name:"w" [| Sym.Static 8; Sym.Static 8 |] Dtype.F32 in
  let d = B.dot g a w in
  let z = B.add g (B.tanh g a) d in
  Graph.set_outputs g [ z ];
  let plan = Planner.plan g in
  (* exp+tanh may fuse; dot is alone; add must not fuse with the cluster
     containing exp unless legal. Either way: the plan's clusters, in
     topo order, must never have a cluster reading a later cluster. *)
  let order = Hashtbl.create 16 in
  List.iteri (fun k c -> Hashtbl.replace order c.Cluster.cid k) plan.Cluster.clusters;
  List.iter
    (fun c ->
      List.iter
        (fun input ->
          match Hashtbl.find_opt plan.Cluster.cluster_of input with
          | None -> () (* parameter/constant *)
          | Some pc ->
              check_bool "producer cluster comes first" true
                (Hashtbl.find order pc < Hashtbl.find order c.Cluster.cid))
        c.Cluster.inputs)
    plan.Cluster.clusters

let test_plan_partition_property () =
  (* every live non-param/const inst appears in exactly one cluster *)
  let g = softmax_graph () in
  let plan = Planner.plan ~config:Planner.no_stitch_config g in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun c ->
      List.iter
        (fun m -> Hashtbl.replace counts m (1 + Option.value (Hashtbl.find_opt counts m) ~default:0))
        c.Cluster.members)
    plan.Cluster.clusters;
  Graph.iter g (fun i ->
      match i.op with
      | Op.Parameter _ | Op.Constant _ -> ()
      | _ -> check_int "in exactly one cluster" 1 (Option.value (Hashtbl.find_opt counts i.id) ~default:0))

let prop_random_pointwise_fuses_to_one =
  QCheck.Test.make ~name:"connected pointwise graphs fuse to one kernel" ~count:50
    QCheck.(int_bound 10000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let g = Graph.create () in
      let tab = Graph.symtab g in
      let s = Table.fresh tab in
      let x = B.param g ~name:"x" [| s |] Dtype.F32 in
      let pool = ref [ x ] in
      let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
      for _ = 1 to 6 do
        let v =
          match Random.State.int st 4 with
          | 0 -> B.add g (pick ()) (pick ())
          | 1 -> B.mul g (pick ()) (pick ())
          | 2 -> B.tanh g (pick ())
          | _ -> B.abs g (pick ())
        in
        pool := v :: !pool
      done;
      Graph.set_outputs g [ List.hd !pool ];
      ignore (Ir.Passes.dce g);
      let plan = Planner.plan g in
      Cluster.num_kernels plan = 1)

let () =
  ignore plan_kinds;
  Alcotest.run "fusion"
    [
      ( "planner",
        [
          Alcotest.test_case "pointwise fuses" `Quick test_pointwise_single_kernel;
          Alcotest.test_case "no-fusion config" `Quick test_no_fusion_config;
          Alcotest.test_case "softmax stitches" `Quick test_softmax_stitches_to_one_kernel;
          Alcotest.test_case "softmax without stitch" `Quick test_softmax_without_stitch;
          Alcotest.test_case "unbounded row blocks stitch" `Quick
            test_softmax_unbounded_row_blocks_stitch;
          Alcotest.test_case "shared-memory budget" `Quick test_stitch_respects_budget;
          Alcotest.test_case "library never fused" `Quick test_library_never_fused;
          Alcotest.test_case "reshape needs product facts" `Quick
            test_fusion_through_reshape_requires_products;
          Alcotest.test_case "static oracle" `Quick test_static_oracle_on_dynamic_graph;
          Alcotest.test_case "kInput cluster" `Quick test_kinput_cluster;
          Alcotest.test_case "layernorm stitches" `Quick test_layernorm_single_stitch;
          Alcotest.test_case "cycle avoidance" `Quick test_cycle_avoidance;
          Alcotest.test_case "plan partitions graph" `Quick test_plan_partition_property;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_random_pointwise_fuses_to_one ] );
    ]
