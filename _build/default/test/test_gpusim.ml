(* Tests for the device profiles and the roofline cost model. *)

module Device = Gpusim.Device
module Cost = Gpusim.Cost

let check_bool = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let test_device_lookup () =
  List.iter
    (fun (name, expect) ->
      match Device.by_name name with
      | Some d -> Alcotest.(check string) name expect d.Device.name
      | None -> Alcotest.failf "device %s not found" name)
    [ ("A10", "A10"); ("a10", "A10"); ("T4", "T4"); ("cpu", "Xeon-8375C"); ("xeon", "Xeon-8375C") ];
  check_bool "unknown" true (Device.by_name "H100" = None)

let test_profile_sanity () =
  check_bool "A10 faster than T4 compute" true (Device.a10.Device.fp32_tflops > Device.t4.Device.fp32_tflops);
  check_bool "A10 more bandwidth" true
    (Device.a10.Device.mem_bandwidth_gbs > Device.t4.Device.mem_bandwidth_gbs);
  check_bool "fp16 rate above fp32" true
    (List.for_all
       (fun d -> d.Device.fp16_tflops > d.Device.fp32_tflops)
       [ Device.a10; Device.t4; Device.xeon ]);
  check_bool "CPU dispatch cheaper than GPU launch" true
    (Device.xeon.Device.kernel_launch_us < Device.a10.Device.kernel_launch_us)

let test_memory_bound_kernel () =
  (* 60 MB of traffic at 600 GB/s and 0.85 eff -> ~117.6 us body *)
  let w =
    { Cost.default_work with Cost.bytes_read = 30_000_000; bytes_written = 30_000_000; blocks = 100_000 }
  in
  let t = Cost.mem_time_us Device.a10 w in
  check_bool "within 5% of analytic value" true (Float.abs (t -. 117.6) < 6.0)

let test_compute_bound_kernel () =
  (* 1 GFLOP at 31.2 TFLOPS, 0.5 eff -> ~64 us *)
  let w = { Cost.default_work with Cost.flops = 1e9; compute_efficiency = 0.5; blocks = 100_000 } in
  let t = Cost.compute_time_us Device.a10 w in
  check_bool "within 5%" true (Float.abs (t -. (1e9 /. (31.2e6 *. 0.5))) < 1.0)

let test_roofline_takes_max () =
  let w =
    { Cost.default_work with Cost.bytes_read = 60_000_000; flops = 1e9; compute_efficiency = 0.5; blocks = 100_000 }
  in
  let body = Cost.body_time_us Device.a10 w in
  let m = Cost.mem_time_us Device.a10 w and c = Cost.compute_time_us Device.a10 w in
  check_bool "body >= max(mem, compute)" true (body >= Float.max m c)

let test_fp16_math_uses_fp16_rate () =
  let w32 = { Cost.default_work with Cost.flops = 1e9; blocks = 100_000 } in
  let w16 = { w32 with Cost.fp16_math = true } in
  let t32 = Cost.compute_time_us Device.a10 w32 in
  let t16 = Cost.compute_time_us Device.a10 w16 in
  checkf "fp16 is tensor-core ratio faster" (t32 /. t16)
    (Device.a10.Device.fp16_tflops /. Device.a10.Device.fp32_tflops)

let test_launch_overhead_floor () =
  (* an empty kernel still costs launch + tail *)
  let w = Cost.default_work in
  let t = Cost.kernel_time_us Device.a10 w in
  check_bool "at least launch+tail" true
    (t >= Device.a10.Device.kernel_launch_us +. Device.a10.Device.kernel_tail_us)

let test_small_grid_penalized () =
  let big = { Cost.default_work with Cost.bytes_read = 1_000_000; blocks = 10_000 } in
  let small = { big with Cost.blocks = 2 } in
  check_bool "underfilled device is slower" true
    (Cost.body_time_us Device.a10 small > Cost.body_time_us Device.a10 big)

let test_gemm_padding_costs () =
  (* padding m from 100 to 128 must not make the GEMM cheaper *)
  let w100 = Cost.gemm_work ~batch:1 ~m:100 ~n:768 ~k:768 ~elem_bytes:4 in
  let w128 = Cost.gemm_work ~batch:1 ~m:128 ~n:768 ~k:768 ~elem_bytes:4 in
  check_bool "padded is not faster" true
    (Cost.kernel_time_us Device.a10 w128 >= Cost.kernel_time_us Device.a10 w100 *. 0.999)

let test_gemm_fp16_flag () =
  let w = Cost.gemm_work ~batch:1 ~m:64 ~n:64 ~k:64 ~elem_bytes:2 in
  check_bool "elem_bytes=2 -> fp16 math" true w.Cost.fp16_math;
  let w4 = Cost.gemm_work ~batch:1 ~m:64 ~n:64 ~k:64 ~elem_bytes:4 in
  check_bool "elem_bytes=4 -> fp32 math" false w4.Cost.fp16_math

let prop_kernel_time_positive =
  QCheck.Test.make ~name:"kernel time always positive and finite" ~count:200
    QCheck.(triple (int_range 0 100_000_000) (int_range 0 1_000_000_000) (int_range 1 1_000_000))
    (fun (bytes, flops, blocks) ->
      let w =
        { Cost.default_work with Cost.bytes_read = bytes; flops = float_of_int flops; blocks }
      in
      List.for_all
        (fun d ->
          let t = Cost.kernel_time_us d w in
          Float.is_finite t && t > 0.0)
        [ Device.a10; Device.t4; Device.xeon ])

let prop_gemm_flops_exact =
  QCheck.Test.make ~name:"gemm flops = 2 b m n k" ~count:100
    QCheck.(quad (int_range 1 4) (int_range 1 512) (int_range 1 512) (int_range 1 512))
    (fun (b, m, n, k) ->
      let w = Cost.gemm_work ~batch:b ~m ~n ~k ~elem_bytes:4 in
      w.Cost.flops = 2.0 *. float_of_int b *. float_of_int m *. float_of_int n *. float_of_int k)

let () =
  Alcotest.run "gpusim"
    [
      ( "devices",
        [
          Alcotest.test_case "lookup" `Quick test_device_lookup;
          Alcotest.test_case "profile sanity" `Quick test_profile_sanity;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "memory bound" `Quick test_memory_bound_kernel;
          Alcotest.test_case "compute bound" `Quick test_compute_bound_kernel;
          Alcotest.test_case "roofline max" `Quick test_roofline_takes_max;
          Alcotest.test_case "fp16 rate" `Quick test_fp16_math_uses_fp16_rate;
          Alcotest.test_case "launch floor" `Quick test_launch_overhead_floor;
          Alcotest.test_case "small grid" `Quick test_small_grid_penalized;
          Alcotest.test_case "gemm padding" `Quick test_gemm_padding_costs;
          Alcotest.test_case "gemm fp16 flag" `Quick test_gemm_fp16_flag;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_kernel_time_positive; prop_gemm_flops_exact ]
      );
    ]
