(* Fusion clusters: the unit of kernel generation. *)

type kind =
  | Single (* one unfused op: its own kernel *)
  | Library (* dot / conv2d: dispatched to a library kernel *)
  | Loop (* kLoop: fused elementwise/shape ops over one loop domain *)
  | Input (* kInput: elementwise producers fused into a rooted reduce *)
  | Stitch (* kStitch: several loop/reduce stages relayed via shared memory *)
  | Horizontal (* independent kLoop kernels packed into one launch *)

let kind_to_string = function
  | Single -> "single"
  | Library -> "library"
  | Loop -> "kLoop"
  | Input -> "kInput"
  | Stitch -> "kStitch"
  | Horizontal -> "kHorizontal"

type t = {
  cid : int;
  kind : kind;
  members : int list; (* instruction ids, topological order *)
  inputs : int list; (* external values read by the cluster *)
  outputs : int list; (* member values visible outside the cluster *)
  domain : Symshape.Sym.shape; (* the kernel's loop domain *)
}

type plan = {
  clusters : t list; (* topological order of roots *)
  cluster_of : (int, int) Hashtbl.t; (* inst id -> cid *)
}

let num_kernels plan =
  (* constants and parameters do not launch kernels *)
  List.length plan.clusters

let count_kind plan k = List.length (List.filter (fun c -> c.kind = k) plan.clusters)

let to_string plan =
  let buf = Buffer.create 256 in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "cluster %d [%s] domain=%s members={%s} inputs={%s} outputs={%s}\n"
           c.cid (kind_to_string c.kind)
           (Symshape.Sym.to_string c.domain)
           (String.concat "," (List.map string_of_int c.members))
           (String.concat "," (List.map string_of_int c.inputs))
           (String.concat "," (List.map string_of_int c.outputs))))
    plan.clusters;
  Buffer.contents buf
