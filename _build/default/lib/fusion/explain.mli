(** Fusion explainability: why two instructions ended up in different
    kernels. Re-applies the planner's rules declaratively and names the
    first one that blocks the merge (`discc explain`). *)

type verdict =
  | Fused
  | Producer_not_fusable of string
  | Consumer_not_fusable of string
  | Reduce_in_producer
  | Domain_mismatch of string * string
  | Stitch_row_unbounded
  | Stitch_row_too_large of int * int  (** bytes needed, budget *)
  | Not_adjacent
  | Would_create_cycle

val verdict_to_string : verdict -> string

val explain :
  ?config:Planner.config -> Ir.Graph.t -> Cluster.plan -> a:int -> b:int -> verdict
