(** The dynamic-shape fusion planner (paper §5).

    Produces a {!Cluster.plan} for a graph without ever inspecting shape
    values: kLoop/kInput legality comes from provable numel equality
    between symbolic shapes (including through reshapes, via product
    facts), and kStitch feasibility from symbolic upper bounds on the
    reduced rows (shared-memory budget). *)

(** How much shape knowledge the planner may use — the fusion-ablation
    axis of the evaluation. *)
type shape_oracle =
  | Static_only  (** fuse only between fully static equal shapes (a
                     shape-value-based compiler meeting dynamic dims) *)
  | Symbolic_dims  (** dimension-equality classes only: reshape kills fusion *)
  | Full_constraints  (** equality classes + product facts (BladeDISC) *)

type config = {
  fusion_enabled : bool;
  oracle : shape_oracle;
  enable_stitch : bool;
  shared_mem_bytes : int;
  max_cluster_size : int option;
      (** cap on fused-cluster size, modeling pattern-library fusion *)
  enable_horizontal : bool;
      (** pack independent same-domain kLoop clusters into one launch
          (AStitch-style extension; off by default) *)
}

val default_config : config
val no_fusion_config : config
val static_only_config : config
val no_product_config : config
val no_stitch_config : config
val horizontal_config : config

val numel_eq : config -> Symshape.Table.t -> Symshape.Sym.shape -> Symshape.Sym.shape -> bool
(** The oracle-filtered numel-equality test the planner uses. *)

val plan : ?config:config -> Ir.Graph.t -> Cluster.plan
