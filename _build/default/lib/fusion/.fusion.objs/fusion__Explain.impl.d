lib/fusion/explain.ml: Array Cluster Hashtbl Ir List Planner Printf Symshape Tensor
