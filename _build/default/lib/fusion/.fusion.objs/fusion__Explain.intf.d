lib/fusion/explain.mli: Cluster Ir Planner
