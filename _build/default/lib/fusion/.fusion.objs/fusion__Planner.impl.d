lib/fusion/planner.ml: Array Cluster Hashtbl Ir List Option Stdlib Symshape Tensor
