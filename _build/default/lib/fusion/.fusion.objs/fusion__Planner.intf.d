lib/fusion/planner.mli: Cluster Ir Symshape
