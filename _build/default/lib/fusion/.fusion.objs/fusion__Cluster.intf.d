lib/fusion/cluster.mli: Hashtbl Symshape
