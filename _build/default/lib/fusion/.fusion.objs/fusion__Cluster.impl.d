lib/fusion/cluster.ml: Buffer Hashtbl List Printf String Symshape
