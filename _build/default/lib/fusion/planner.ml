(* The dynamic-shape fusion planner (paper §5).

   Fusion decisions never look at shape *values* — only at provable
   relationships between symbolic shapes: dimension equality classes,
   product-of-dimension equalities (to fuse through reshape), and value
   upper bounds (to prove a kStitch row fits in shared memory).

   Phase A greedily merges elementwise / shape-manipulating producers
   into their consumers (kLoop), allowing a single reduce per cluster as
   the kInput root. Phase B stitches reduce-bearing clusters with their
   neighbours when every member tensor provably lives on the full domain
   F or the reduced domain O and the reduced row provably fits in shared
   memory. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op

(* How much shape knowledge the planner may use — the E4/E8 ablations. *)
type shape_oracle =
  | Static_only (* fuse only between fully-static equal shapes *)
  | Symbolic_dims (* use dim-equality classes, but no product facts *)
  | Full_constraints (* dim equality + product facts (default) *)

type config = {
  fusion_enabled : bool;
  oracle : shape_oracle;
  enable_stitch : bool;
  shared_mem_bytes : int; (* per-block budget for kStitch row relays *)
  max_cluster_size : int option; (* cap for pattern-library-style fusion *)
  enable_horizontal : bool; (* pack independent same-domain kLoops (extension) *)
}

let default_config =
  { fusion_enabled = true; oracle = Full_constraints; enable_stitch = true;
    shared_mem_bytes = 48 * 1024; max_cluster_size = None; enable_horizontal = false }

let horizontal_config = { default_config with enable_horizontal = true }

let no_fusion_config = { default_config with fusion_enabled = false }
let static_only_config = { default_config with oracle = Static_only }
let no_product_config = { default_config with oracle = Symbolic_dims }
let no_stitch_config = { default_config with enable_stitch = false }

(* --- shape oracle -------------------------------------------------------- *)

let numel_eq config tab (a : Sym.shape) (b : Sym.shape) =
  match config.oracle with
  | Static_only -> (
      match (Sym.numel_static a, Sym.numel_static b) with
      | Some x, Some y -> x = y
      | _ -> false)
  | Symbolic_dims -> (
      Table.equal_shapes tab a b
      ||
      match (Sym.numel_static a, Sym.numel_static b) with
      | Some x, Some y -> x = y
      | _ -> false)
  | Full_constraints -> Table.numel_equal tab a b

(* --- planner state -------------------------------------------------------- *)

type cstate = {
  mutable domain : Sym.shape; (* loop domain of the cluster *)
  mutable reduces : int list; (* member reduce instruction ids *)
  mutable stitched : bool;
  mutable horizontal : bool;
  mutable members : int list; (* instruction ids in this cluster *)
}

type t = {
  g : Graph.t;
  config : config;
  parent : int array; (* union-find over instruction ids *)
  states : (int, cstate) Hashtbl.t; (* root id -> state *)
  users_of : int list array; (* precomputed inst-level use lists *)
}

let rec find st id =
  let p = st.parent.(id) in
  if p = id then id
  else begin
    let root = find st p in
    st.parent.(id) <- root;
    root
  end

let fusable_producer (i : Graph.inst) =
  match Op.fusion_class i.op with
  | Op.Elementwise | Op.Shape_manipulating -> true
  | Op.Reduction | Op.Library | Op.Opaque -> false

let fusable_consumer (i : Graph.inst) =
  match Op.fusion_class i.op with
  | Op.Elementwise | Op.Shape_manipulating | Op.Reduction -> true
  | Op.Library | Op.Opaque -> false

(* Successor clusters of cluster [c] (excluding itself). *)
let successors st c =
  let ms = (Hashtbl.find st.states c).members in
  List.sort_uniq Stdlib.compare
    (List.concat_map
       (fun m ->
         List.filter_map
           (fun u ->
             let cu = find st u in
             if cu = c then None else Some cu)
           st.users_of.(m))
       ms)

(* Would making [ca] and [cb] one cluster create a cycle? I.e. is there a
   path from ca to cb through a third cluster in the cluster DAG? *)
let creates_cycle st ca cb =
  let visited = Hashtbl.create 32 in
  let rec dfs c =
    if c = cb then true
    else if Hashtbl.mem visited c then false
    else begin
      Hashtbl.add visited c ();
      List.exists (fun cu -> cu <> ca && dfs cu) (successors st c)
    end
  in
  List.exists (fun cu -> cu <> cb && dfs cu) (successors st ca)

let do_merge st ~into:cb ca ~domain ~stitched =
  let sa = Hashtbl.find st.states ca and sb = Hashtbl.find st.states cb in
  st.parent.(ca) <- cb;
  sb.domain <- domain;
  sb.reduces <- sa.reduces @ sb.reduces;
  sb.stitched <- stitched || sa.stitched || sb.stitched;
  sb.horizontal <- sa.horizontal || sb.horizontal;
  sb.members <- List.rev_append sa.members sb.members;
  Hashtbl.remove st.states ca

(* Phase A merge test: producer cluster [ca] (via edge value [a]) into
   consumer cluster [cb]. *)
let try_fuse_loop st (a : Graph.inst) (consumer : Graph.inst) =
  let tab = Graph.symtab st.g in
  let ca = find st a.id and cb = find st consumer.id in
  if ca = cb then false
  else if not (fusable_producer a && fusable_consumer consumer) then false
  else begin
    let sa = Hashtbl.find st.states ca and sb = Hashtbl.find st.states cb in
    (* at most one reduce per phase-A cluster, and it must be the consumer side *)
    if sa.reduces <> [] then false
    else if sa.stitched || sb.stitched then false
    else if
      (* every member of the producer cluster must live on the consumer
         domain: its own domain must match (members were already checked
         against it when they joined). *)
      not (numel_eq st.config tab sa.domain sb.domain)
      || not (numel_eq st.config tab a.shape sb.domain)
    then false
    else if
      match st.config.max_cluster_size with
      | Some cap -> List.length sa.members + List.length sb.members > cap
      | None -> false
    then false
    else if creates_cycle st ca cb then false
    else begin
      do_merge st ~into:cb ca ~domain:sb.domain ~stitched:false;
      true
    end
  end

(* The reduced ("outer") shape of a reduce instruction. *)
let reduce_outer (g : Graph.t) (rid : int) : Sym.shape = (Graph.inst g rid).shape

let reduce_row_upper_bound_bytes (g : Graph.t) (rid : int) : int option =
  let i = Graph.inst g rid in
  match i.op with
  | Op.Reduce { dims; _ } ->
      let input = Graph.inst g i.args.(0) in
      let row = Array.of_list (List.map (fun d -> input.shape.(d)) dims) in
      Option.map
        (fun n -> n * Tensor.Dtype.byte_size input.dtype)
        (Table.shape_upper_bound_numel (Graph.symtab g) row)
  | _ -> None

(* Phase B: stitch producer cluster [ca] with consumer cluster [cb].
   Every member value of both clusters must provably live on the full
   domain F or on the outer domain O of one of the reduces, and each
   reduce row must provably fit in shared memory. *)
let try_stitch st (a : Graph.inst) (consumer : Graph.inst) =
  let tab = Graph.symtab st.g in
  let ca = find st a.id and cb = find st consumer.id in
  if ca = cb then false
  else if not (fusable_producer a || Op.fusion_class a.op = Op.Reduction) then false
  else if not (fusable_consumer consumer) then false
  else begin
    let sa = Hashtbl.find st.states ca and sb = Hashtbl.find st.states cb in
    let reduces = sa.reduces @ sb.reduces in
    if reduces = [] then false
    else begin
      (* full domain: the (unique up to numel-equality) reduce input domain *)
      let f_domain = (Graph.inst st.g (List.hd reduces)).args.(0) in
      let f_shape = (Graph.inst st.g f_domain).shape in
      let outer = reduce_outer st.g (List.hd reduces) in
      let on_domain (s : Sym.shape) =
        numel_eq st.config tab s f_shape || numel_eq st.config tab s outer
      in
      let members_ok c =
        List.for_all
          (fun m -> on_domain (Graph.inst st.g m).shape)
          (Hashtbl.find st.states c).members
      in
      let rows_fit =
        List.for_all
          (fun rid ->
            match reduce_row_upper_bound_bytes st.g rid with
            | Some b -> b <= st.config.shared_mem_bytes
            | None -> false)
          reduces
      in
      let outers_compatible =
        List.for_all
          (fun rid -> numel_eq st.config tab (reduce_outer st.g rid) outer)
          reduces
      in
      let size_ok =
        match st.config.max_cluster_size with
        | Some cap -> List.length sa.members + List.length sb.members <= cap
        | None -> true
      in
      if
        size_ok && rows_fit && outers_compatible && members_ok ca && members_ok cb
        && not (creates_cycle st ca cb)
      then begin
        do_merge st ~into:cb ca ~domain:f_shape ~stitched:true;
        true
      end
      else false
    end
  end

(* --- entry point ---------------------------------------------------------- *)

let initial_state (g : Graph.t) config =
  let n = Graph.fold g (fun m i -> max m (i.id + 1)) 0 in
  let users_of = Array.make n [] in
  Graph.iter g (fun i ->
      Array.iter (fun a -> users_of.(a) <- i.id :: users_of.(a)) i.args);
  let st =
    { g; config; parent = Array.init n (fun i -> i); states = Hashtbl.create 64; users_of }
  in
  Graph.iter g (fun i ->
      let domain =
        match i.op with
        | Op.Reduce _ -> (Graph.inst g i.args.(0)).shape
        | _ -> i.shape
      in
      let reduces = match i.op with Op.Reduce _ -> [ i.id ] | _ -> [] in
      Hashtbl.replace st.states i.id
        { domain; reduces; stitched = false; horizontal = false; members = [ i.id ] });
  st

let finalize (st : t) : Cluster.plan =
  let g = st.g in
  let members : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter (fun root s -> Hashtbl.replace members root s.members) st.states;
  let cluster_of = Hashtbl.create 64 in
  let outputs_set = Graph.outputs g in
  let mk_cluster root ms =
    let ms = List.sort Stdlib.compare ms in
    let in_cluster id = List.mem id ms in
    let inputs =
      List.sort_uniq Stdlib.compare
        (List.concat_map
           (fun id ->
             Array.to_list (Graph.inst g id).args |> List.filter (fun a -> not (in_cluster a)))
           ms)
    in
    let outputs =
      List.filter
        (fun id ->
          List.mem id outputs_set
          || List.exists (fun u -> not (in_cluster u)) (Graph.users g id))
        ms
    in
    let s = Hashtbl.find st.states root in
    let kind =
      match ms with
      | [ single ] -> (
          let i = Graph.inst g single in
          match Op.fusion_class i.op with
          | Op.Library -> Cluster.Library
          | _ -> Cluster.Single)
      | _ ->
          if s.horizontal then Cluster.Horizontal
          else if s.stitched then Cluster.Stitch
          else if s.reduces <> [] then Cluster.Input
          else Cluster.Loop
    in
    { Cluster.cid = root; kind; members = ms; inputs; outputs; domain = s.domain }
  in
  let clusters =
    Hashtbl.fold
      (fun root ms acc ->
        (* parameters & constants never launch kernels; skip pure ones *)
        match ms with
        | [ single ] when
            (match (Graph.inst g single).op with
            | Op.Parameter _ | Op.Constant _ -> true
            | _ -> false) ->
            acc
        | _ -> mk_cluster root ms :: acc)
      members []
  in
  (* True topological order over the cluster DAG (Kahn), tie-broken by
     smallest member id for determinism. Min-member order alone is not
     topological: a stitched cluster can absorb an early instruction yet
     depend on a later library kernel. *)
  let clusters =
    let by_member = Hashtbl.create 64 in
    List.iter
      (fun c -> List.iter (fun m -> Hashtbl.replace by_member m c.Cluster.cid) c.Cluster.members)
      clusters;
    let by_cid = Hashtbl.create 64 in
    List.iter (fun c -> Hashtbl.replace by_cid c.Cluster.cid c) clusters;
    let preds c =
      List.filter_map (fun input -> Hashtbl.find_opt by_member input) c.Cluster.inputs
      |> List.sort_uniq Stdlib.compare
    in
    let indegree = Hashtbl.create 64 in
    List.iter (fun c -> Hashtbl.replace indegree c.Cluster.cid (List.length (preds c))) clusters;
    let succs = Hashtbl.create 64 in
    List.iter
      (fun c ->
        List.iter
          (fun p ->
            Hashtbl.replace succs p
              (c.Cluster.cid :: Option.value (Hashtbl.find_opt succs p) ~default:[]))
          (preds c))
      clusters;
    let key cid = List.hd (Hashtbl.find by_cid cid).Cluster.members in
    let sorted_insert cid l =
      List.sort (fun a b -> Stdlib.compare (key a) (key b)) (cid :: l)
    in
    let ready =
      ref
        (List.sort
           (fun a b -> Stdlib.compare (key a) (key b))
           (List.filter_map
              (fun c ->
                if Hashtbl.find indegree c.Cluster.cid = 0 then Some c.Cluster.cid else None)
              clusters))
    in
    let out = ref [] in
    let continue_ = ref true in
    while !continue_ do
      match !ready with
      | [] -> continue_ := false
      | cid :: rest ->
          ready := rest;
          out := cid :: !out;
          List.iter
            (fun s ->
              let d = Hashtbl.find indegree s - 1 in
              Hashtbl.replace indegree s d;
              if d = 0 then ready := sorted_insert s !ready)
            (Option.value (Hashtbl.find_opt succs cid) ~default:[])
    done;
    if List.length !out <> List.length clusters then
      failwith "fusion planner produced a cyclic cluster graph";
    List.rev_map (fun cid -> Hashtbl.find by_cid cid) !out
  in
  List.iter
    (fun c -> List.iter (fun m -> Hashtbl.replace cluster_of m c.Cluster.cid) c.Cluster.members)
    clusters;
  { Cluster.clusters; cluster_of }

let plan ?(config = default_config) (g : Graph.t) : Cluster.plan =
  let st = initial_state g config in
  if config.fusion_enabled then begin
    (* Phase A: kLoop / kInput, to fixpoint (bounded). *)
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds < 4 do
      changed := false;
      incr rounds;
      let insts = List.rev (Graph.live_insts g) in
      List.iter
        (fun (i : Graph.inst) ->
          Array.iter
            (fun aid ->
              let a = Graph.inst g aid in
              if try_fuse_loop st a i then changed := true)
            i.args)
        insts
    done;
    (* Phase B: kStitch. *)
    if config.enable_stitch then begin
      let changed = ref true in
      let rounds = ref 0 in
      while !changed && !rounds < 4 do
        changed := false;
        incr rounds;
        let insts = List.rev (Graph.live_insts g) in
        List.iter
          (fun (i : Graph.inst) ->
            Array.iter
              (fun aid ->
                let a = Graph.inst g aid in
                if try_stitch st a i then changed := true)
              i.args)
          insts
      done
    end;
    (* Phase C (extension): horizontal packing of independent kLoop
       clusters on provably-equal domains — one launch instead of many
       for sibling elementwise work (e.g. the parallel q/k/v epilogues). *)
    if config.enable_horizontal then begin
      let tab = Graph.symtab g in
      let eligible_roots () =
        Hashtbl.fold
          (fun root s acc ->
            let ok =
              s.reduces = [] && (not s.stitched)
              && List.for_all
                   (fun m ->
                     match Op.fusion_class (Graph.inst g m).op with
                     | Op.Elementwise | Op.Shape_manipulating -> true
                     | _ -> false)
                   s.members
            in
            if ok then (root, s) :: acc else acc)
          st.states []
        |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
      in
      let no_edge ca cb =
        (* no member of one cluster directly feeds the other *)
        let feeds x y =
          List.exists
            (fun m -> List.exists (fun u -> find st u = y) st.users_of.(m))
            (Hashtbl.find st.states x).members
        in
        (not (feeds ca cb)) && not (feeds cb ca)
      in
      let changed = ref true in
      while !changed do
        changed := false;
        let roots = eligible_roots () in
        let rec pair = function
          | [] | [ _ ] -> ()
          | (ra, sa) :: rest -> (
              match
                List.find_opt
                  (fun (rb, sb) ->
                    List.length sa.members + List.length sb.members <= 16
                    && numel_eq config tab sa.domain sb.domain
                    && no_edge ra rb
                    && (not (creates_cycle st ra rb))
                    && not (creates_cycle st rb ra))
                  rest
              with
              | Some (rb, _) ->
                  do_merge st ~into:rb ra ~domain:(Hashtbl.find st.states rb).domain
                    ~stitched:false;
                  (Hashtbl.find st.states rb).horizontal <- true;
                  changed := true
              | None -> pair rest)
        in
        pair roots
      done
    end
  end;
  finalize st
