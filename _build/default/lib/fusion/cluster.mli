(** Fusion clusters — each cluster becomes exactly one device kernel. *)

type kind =
  | Single  (** one unfused (but fusable-class) op *)
  | Library  (** dot / conv2d, dispatched to a library kernel *)
  | Loop  (** kLoop: fused elementwise/shape ops over one loop domain *)
  | Input  (** kInput: elementwise producers fused into a rooted reduce *)
  | Stitch  (** kStitch: loop/reduce stages relayed through shared memory *)
  | Horizontal  (** independent kLoop kernels packed into one launch (extension) *)

val kind_to_string : kind -> string

type t = {
  cid : int;
  kind : kind;
  members : int list;  (** instruction ids, topological order *)
  inputs : int list;  (** external values the kernel reads *)
  outputs : int list;  (** member values visible outside the kernel *)
  domain : Symshape.Sym.shape;  (** the kernel's loop domain *)
}

type plan = {
  clusters : t list;
  cluster_of : (int, int) Hashtbl.t;
}

val num_kernels : plan -> int
val count_kind : plan -> kind -> int
val to_string : plan -> string
