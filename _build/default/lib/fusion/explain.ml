(* Fusion explainability: given a plan, answer "why are instructions a
   and b in different kernels?" with the first planner rule that blocks
   the merge. Surfaced through `discc explain` and used in tests to pin
   down planner behaviour. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op

type verdict =
  | Fused (* already in the same cluster *)
  | Producer_not_fusable of string (* library/opaque op *)
  | Consumer_not_fusable of string
  | Reduce_in_producer (* kLoop rule: producer cluster carries a reduce *)
  | Domain_mismatch of string * string (* loop domains not provably numel-equal *)
  | Stitch_row_unbounded (* no upper bound to prove shared-memory fit *)
  | Stitch_row_too_large of int * int (* bytes needed vs budget *)
  | Not_adjacent (* no producer/consumer edge between the clusters *)
  | Would_create_cycle

let verdict_to_string = function
  | Fused -> "already fused into the same kernel"
  | Producer_not_fusable op -> Printf.sprintf "producer is not fusable (%s)" op
  | Consumer_not_fusable op -> Printf.sprintf "consumer is not fusable (%s)" op
  | Reduce_in_producer ->
      "producer cluster contains a reduce: only kStitch can merge across it"
  | Domain_mismatch (a, b) ->
      Printf.sprintf
        "loop domains %s and %s are not provably numel-equal under the shape constraints" a b
  | Stitch_row_unbounded ->
      "the reduced row has no upper bound, so the shared-memory fit cannot be proven \
       (add a range constraint to the dim)"
  | Stitch_row_too_large (need, budget) ->
      Printf.sprintf "the reduced row needs %d bytes of shared memory; budget is %d" need budget
  | Not_adjacent -> "the clusters are not producer/consumer adjacent"
  | Would_create_cycle -> "merging would create a cycle through a third kernel"

(* Explain the separation of the clusters containing [a] and [b] in a
   finished plan. This re-applies the planner's checks declaratively. *)
let explain ?(config = Planner.default_config) (g : Graph.t) (plan : Cluster.plan) ~(a : int)
    ~(b : int) : verdict =
  let tab = Graph.symtab g in
  let cluster_of id = Hashtbl.find_opt plan.Cluster.cluster_of id in
  match (cluster_of a, cluster_of b) with
  | Some ca, Some cb when ca = cb -> Fused
  | _ -> (
      let find_cluster cid =
        List.find (fun c -> c.Cluster.cid = cid) plan.Cluster.clusters
      in
      let ia = Graph.inst g a and ib = Graph.inst g b in
      let class_name i = Op.to_string i.Graph.op in
      let fusable i =
        match Op.fusion_class i.Graph.op with
        | Op.Elementwise | Op.Shape_manipulating | Op.Reduction -> true
        | Op.Library | Op.Opaque -> false
      in
      if not (fusable ia) then Producer_not_fusable (class_name ia)
      else if not (fusable ib) then Consumer_not_fusable (class_name ib)
      else
        match (cluster_of a, cluster_of b) with
        | Some ca_id, Some cb_id -> (
            let ca = find_cluster ca_id and cb = find_cluster cb_id in
            (* adjacency: some member of one reads some member of the other *)
            let feeds x y =
              List.exists
                (fun m ->
                  List.exists
                    (fun u -> List.mem u y.Cluster.members)
                    (Graph.users g m))
                x.Cluster.members
            in
            let producer, consumer =
              if feeds ca cb then (ca, cb) else if feeds cb ca then (cb, ca) else (ca, ca)
            in
            if producer == consumer then Not_adjacent
            else
              let has_reduce c =
                List.exists
                  (fun m ->
                    match (Graph.inst g m).Graph.op with Op.Reduce _ -> true | _ -> false)
                  c.Cluster.members
              in
              let domains_eq =
                Planner.numel_eq config tab producer.Cluster.domain consumer.Cluster.domain
              in
              if has_reduce producer then
                (* a stitch would be needed; find the blocking condition *)
                let rows_bounded =
                  List.for_all
                    (fun m ->
                      match (Graph.inst g m).Graph.op with
                      | Op.Reduce { dims; _ } -> (
                          let input = Graph.inst g (Graph.inst g m).Graph.args.(0) in
                          let row =
                            Array.of_list (List.map (fun d -> input.Graph.shape.(d)) dims)
                          in
                          match Table.shape_upper_bound_numel tab row with
                          | Some n ->
                              n * Tensor.Dtype.byte_size input.Graph.dtype
                              <= config.Planner.shared_mem_bytes
                          | None -> false)
                      | _ -> true)
                    producer.Cluster.members
                in
                if not config.Planner.enable_stitch then Reduce_in_producer
                else if rows_bounded then Would_create_cycle
                else
                  let need =
                    List.fold_left
                      (fun acc m ->
                        match (Graph.inst g m).Graph.op with
                        | Op.Reduce { dims; _ } -> (
                            let input = Graph.inst g (Graph.inst g m).Graph.args.(0) in
                            let row =
                              Array.of_list (List.map (fun d -> input.Graph.shape.(d)) dims)
                            in
                            match Table.shape_upper_bound_numel tab row with
                            | Some n -> max acc (n * Tensor.Dtype.byte_size input.Graph.dtype)
                            | None -> acc)
                        | _ -> acc)
                      0 producer.Cluster.members
                  in
                  if need = 0 then Stitch_row_unbounded
                  else if need > config.Planner.shared_mem_bytes then
                    Stitch_row_too_large (need, config.Planner.shared_mem_bytes)
                  else Would_create_cycle
              else if not domains_eq then
                Domain_mismatch
                  (Sym.to_string producer.Cluster.domain, Sym.to_string consumer.Cluster.domain)
              else Would_create_cycle)
        | _ -> Not_adjacent)
