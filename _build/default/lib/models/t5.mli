(** T5-small encoder with in-graph relative position bias
    (iota distances, clipped bucketing, gather from a learned table). *)

type config = { layers : int; hidden : int; heads : int; ffn : int; vocab : int; buckets : int }

val small : config
(** paper scale *)

val tiny : config
(** structurally identical test scale *)

val build : ?config:config -> unit -> Common.built
