(** Conformer-lite ASR encoder: stride-2 convolutional subsampling over
    a dynamic frame count, transformer stack on the (derived) subsampled
    time axis, CTC-style per-frame softmax + greedy argmax decode. *)

type config = { layers : int; hidden : int; heads : int; ffn : int; mel : int; vocab : int }

val default : config
(** paper scale *)

val tiny : config
(** structurally identical test scale *)

val build : ?config:config -> unit -> Common.built
