(** The evaluation model suite: paper-scale and test-scale builders plus
    the shape environments each experiment uses. *)

type entry = {
  name : string;
  description : string;
  dynamism : string;
  build : unit -> Common.built;  (** paper scale *)
  build_tiny : unit -> Common.built;  (** test scale, same structure *)
  bench_dims : (string * int) list list;  (** E1 shape grid *)
  tiny_dims : (string * int) list;
  sweep : string * int list;  (** E3: swept dim and its values *)
}

val all : entry list

val find : string -> entry
(** @raise Invalid_argument on unknown model names. *)
