(** FastSpeech2-style TTS: encoder, length regulation (frame
    count as an independent dynamic dim + gather map; see DESIGN.md
    substitutions), decoder, mel head. *)

type config = { layers : int; hidden : int; heads : int; ffn : int; phones : int; mel : int }

val default : config
(** paper scale *)

val tiny : config
(** structurally identical test scale *)

val build : ?config:config -> unit -> Common.built
