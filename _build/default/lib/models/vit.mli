(** ViT-S/16-style vision transformer with dynamic image resolution:
    stride-16 patch conv (derived output extents), flatten-to-tokens
    through a product fact (np = h'·w'), transformer stack, mean-pooled
    classification head. *)

type config = { layers : int; hidden : int; heads : int; ffn : int; patch : int; classes : int }

val small : config
(** paper scale *)

val tiny : config
(** structurally identical test scale *)

val build : ?config:config -> unit -> Common.built
