(* Transformer-base encoder-decoder (translation inference, one decoder
   pass over the generated prefix): 6+6 layers, hidden 512. Two
   independent dynamic lengths (source and target) plus dynamic batch —
   the hardest shape-diversity case in the suite. *)

module Sym = Symshape.Sym
module B = Ir.Builder
module C = Common
module Dtype = Tensor.Dtype

type config = { layers : int; hidden : int; heads : int; ffn : int; vocab : int; max_pos : int }

let base = { layers = 6; hidden = 512; heads = 8; ffn = 2048; vocab = 32000; max_pos = 256 }
let tiny = { layers = 1; hidden = 32; heads = 4; ffn = 64; vocab = 100; max_pos = 64 }

let decoder_layer ctx ~name x ~memory ~heads ~hidden ~inner ~self_bias ~cross_bias =
  let g = ctx.C.g in
  let att = C.attention ctx ~name:(name ^ ".self") ~heads ~hidden x ~mask_bias:self_bias in
  let x1 = C.layernorm ctx ~name:(name ^ ".ln1") (B.add g x att) ~hidden in
  let cross =
    C.attention ctx ~name:(name ^ ".cross") ~x_kv:memory ~heads ~hidden x1
      ~mask_bias:cross_bias
  in
  let x2 = C.layernorm ctx ~name:(name ^ ".ln2") (B.add g x1 cross) ~hidden in
  let f = C.ffn ctx ~name:(name ^ ".ffn") x2 ~hidden ~inner in
  C.layernorm ctx ~name:(name ^ ".ln3") (B.add g x2 f) ~hidden

let build ?(config = base) () : C.built =
  let ctx = C.new_ctx () in
  let g = ctx.C.g in
  let batch = C.fresh_dim ~name:"batch" ~lb:1 ~ub:64 ~likely:[ 1; 8 ] ctx in
  let src = C.fresh_dim ~name:"src" ~lb:1 ~ub:config.max_pos ~likely:[ 24; 48 ] ctx in
  let tgt = C.fresh_dim ~name:"tgt" ~lb:1 ~ub:config.max_pos ~likely:[ 24; 48 ] ctx in
  let src_ids = C.param ctx ~name:"src_ids" [| batch; src |] Dtype.I32 (C.Ids config.vocab) in
  let tgt_ids = C.param ctx ~name:"tgt_ids" [| batch; tgt |] Dtype.I32 (C.Ids config.vocab) in
  let src_mask = C.param ctx ~name:"src_mask" [| batch; src |] Dtype.F32 C.Binary_mask in
  (* encoder *)
  let enc_bias = C.mask_to_bias ctx ~heads:config.heads ~batch_dim:batch ~seq_dim:src src_mask in
  let enc =
    C.embed ctx ~name:"enc.emb" src_ids ~batch_dim:batch ~seq_dim:src ~vocab:config.vocab
      ~max_pos:config.max_pos ~hidden:config.hidden
  in
  let rec enc_stack x l =
    if l >= config.layers then x
    else
      enc_stack
        (C.encoder_layer ctx
           ~name:(Printf.sprintf "enc%d" l)
           x ~heads:config.heads ~hidden:config.hidden ~inner:config.ffn
           ~mask_bias:(Some enc_bias))
        (l + 1)
  in
  let memory = enc_stack enc 0 in
  (* decoder: causal self-attention bias + source-mask cross bias *)
  let rows = B.iota g ~out:[| tgt; tgt |] ~dim:0 in
  let cols = B.iota g ~out:[| tgt; tgt |] ~dim:1 in
  let causal2d =
    B.select g (B.cmp g Ir.Op.Ge rows cols) (B.constf g 0.0) (B.constf g (-1e9))
  in
  let self_bias =
    B.broadcast g
      (B.reshape g causal2d [| Sym.Static 1; Sym.Static 1; tgt; tgt |])
      ~dims:[| 0; 1; 2; 3 |]
      ~out:[| batch; Sym.Static config.heads; tgt; tgt |]
  in
  let cross_bias =
    (* (1 - src_mask) * -1e9 over [b, heads, tgt, src] *)
    let neg = B.mulf g (B.subf g (B.neg g src_mask) (-1.0)) (-1e9) in
    let re = B.reshape g neg [| batch; Sym.Static 1; Sym.Static 1; src |] in
    B.broadcast g re ~dims:[| 0; 1; 2; 3 |]
      ~out:[| batch; Sym.Static config.heads; tgt; src |]
  in
  let dec =
    C.embed ctx ~name:"dec.emb" tgt_ids ~batch_dim:batch ~seq_dim:tgt ~vocab:config.vocab
      ~max_pos:config.max_pos ~hidden:config.hidden
  in
  let rec dec_stack x l =
    if l >= config.layers then x
    else
      dec_stack
        (decoder_layer ctx
           ~name:(Printf.sprintf "dec%d" l)
           x ~memory ~heads:config.heads ~hidden:config.hidden ~inner:config.ffn
           ~self_bias:(Some self_bias) ~cross_bias:(Some cross_bias))
        (l + 1)
  in
  let out = dec_stack dec 0 in
  C.finish ctx ~name:"seq2seq"
    ~dims:[ ("batch", batch); ("src", src); ("tgt", tgt) ]
    ~outputs:[ out ]
