(** CRNN-style OCR head: stride-2 conv stack over dynamic-width
    images, then a per-timestep classifier. Output widths are derived
    (affine) symbolic dims. *)

type config = { channels : int list; charset : int; height : int }

val default : config
(** paper scale *)

val tiny : config
(** structurally identical test scale *)

val build : ?config:config -> unit -> Common.built
