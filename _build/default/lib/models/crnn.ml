(* CRNN-style OCR recognizer head: a convolutional feature extractor
   over images of fixed height 32 and *dynamic width*, followed by a
   per-timestep dense classifier with softmax over the charset. The conv
   stack produces affine-derived dynamic output widths. *)

module Sym = Symshape.Sym
module B = Ir.Builder
module C = Common
module Dtype = Tensor.Dtype

type config = { channels : int list; charset : int; height : int }

let default = { channels = [ 32; 64; 128 ]; charset = 96; height = 32 }
let tiny = { channels = [ 4; 8 ]; charset = 10; height = 8 }

let build ?(config = default) () : C.built =
  let ctx = C.new_ctx () in
  let g = ctx.C.g in
  let batch = C.fresh_dim ~name:"batch" ~lb:1 ~ub:64 ~likely:[ 8; 16 ] ctx in
  (* width must survive the stride-2 convs; keep a generous lower bound *)
  let width = C.fresh_dim ~name:"width" ~lb:32 ~ub:512 ~likely:[ 100; 160 ] ctx in
  let img =
    C.param ctx ~name:"image"
      [| batch; Sym.Static config.height; width; Sym.Static 1 |]
      Dtype.F32 (C.Normal 1.0)
  in
  (* conv (stride 1) -> relu -> 2x2 max-pool stack: each stage halves
     the spatial extents through the pooling window *)
  let x, _cin =
    List.fold_left
      (fun (x, cin) cout ->
        let w = C.weight ctx (Printf.sprintf "conv%d.w" cout) [ 3; 3; cin; cout ] in
        let y = B.conv2d g x w ~strides:(1, 1) ~padding:(1, 1) in
        let a = B.relu g y in
        (B.max_pool2d g a ~window:(2, 2) ~strides:(2, 2), cout))
      (img, 1) config.channels
  in
  (* [b, h', w', c] -> [b, w', h'*c] time-major features *)
  let shape = (Ir.Graph.inst g x).Ir.Graph.shape in
  let h' = shape.(1) and w' = shape.(2) and c = shape.(3) in
  let hc =
    match (Sym.static_value h', Sym.static_value c) with
    | Some a, Some b -> a * b
    | _ -> invalid_arg "crnn: feature height and channels must be static"
  in
  let t = B.transpose g x [| 0; 2; 1; 3 |] in
  let feats = B.reshape g t [| batch; w'; Sym.Static hc |] in
  (* two dense layers + per-timestep softmax over the charset *)
  let hdim = 2 * hc in
  let hidden = B.relu g (C.dense ctx ~name:"fc1" feats ~din:hc ~dout:hdim) in
  let logits = C.dense ctx ~name:"fc2" hidden ~din:hdim ~dout:config.charset in
  let probs = B.softmax g logits in
  (* greedy per-timestep decode: best character index per position *)
  let decoded = B.argmax g probs ~dim:2 in
  C.finish ctx ~name:"crnn"
    ~dims:[ ("batch", batch); ("width", width) ]
    ~outputs:[ probs; decoded ]
