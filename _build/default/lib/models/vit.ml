(* ViT-S/16-style vision transformer with *dynamic image resolution*:
   the patch embedding is a stride-16 conv whose output extents are
   derived symbolic dims, and the flatten into the token sequence goes
   through a product fact (np = h' * w') — the full cross-level shape
   pipeline in one model. Mean-pooled classification head. *)

module Sym = Symshape.Sym
module B = Ir.Builder
module C = Common
module Dtype = Tensor.Dtype

type config = { layers : int; hidden : int; heads : int; ffn : int; patch : int; classes : int }

let small = { layers = 12; hidden = 384; heads = 6; ffn = 1536; patch = 16; classes = 1000 }
let tiny = { layers = 1; hidden = 32; heads = 4; ffn = 64; patch = 4; classes = 10 }

let build ?(config = small) () : C.built =
  let ctx = C.new_ctx () in
  let g = ctx.C.g in
  let p = config.patch in
  let batch = C.fresh_dim ~name:"batch" ~lb:1 ~ub:64 ~likely:[ 1; 8 ] ctx in
  let h = C.fresh_dim ~name:"h" ~lb:(2 * p) ~ub:(24 * p) ~likely:[ 14 * p ] ctx in
  let w = C.fresh_dim ~name:"w" ~lb:(2 * p) ~ub:(24 * p) ~likely:[ 14 * p ] ctx in
  let img =
    C.param ctx ~name:"image" [| batch; h; w; Sym.Static 3 |] Dtype.F32 (C.Normal 1.0)
  in
  (* patch embedding: stride-p conv, then flatten patches to tokens *)
  let patch_w = C.weight ctx "patch.w" [ p; p; 3; config.hidden ] in
  let feat = B.conv2d g img patch_w ~strides:(p, p) ~padding:(0, 0) in
  let fshape = (Ir.Graph.inst g feat).Ir.Graph.shape in
  let h' = fshape.(1) and w' = fshape.(2) in
  let np = Symshape.Table.fresh ~name:"np" (C.symtab ctx) in
  let tokens = B.reshape g feat [| batch; np; Sym.Static config.hidden |] in
  ignore (h', w');
  let x = C.layernorm ctx ~name:"emb.ln" tokens ~hidden:config.hidden in
  let rec stack x l =
    if l >= config.layers then x
    else
      stack
        (C.encoder_layer ctx
           ~name:(Printf.sprintf "block%d" l)
           x ~heads:config.heads ~hidden:config.hidden ~inner:config.ffn ~mask_bias:None)
        (l + 1)
  in
  let x = stack x 0 in
  (* mean pooling over the (dynamic) token axis *)
  let summed = B.reduce_sum g x ~dims:[ 1 ] (* [b, hidden] *) in
  let ones =
    B.broadcast g (B.constf g 1.0) ~dims:[||] ~out:[| batch; np |]
  in
  let counts = B.reduce_sum g ones ~dims:[ 1 ] (* [b] = np *) in
  let counts_b =
    B.broadcast g counts ~dims:[| 0 |] ~out:[| batch; Sym.Static config.hidden |]
  in
  let pooled = B.div g summed counts_b in
  let logits = C.dense ctx ~name:"head" pooled ~din:config.hidden ~dout:config.classes in
  let probs = B.softmax g logits in
  C.finish ctx ~name:"vit"
    ~dims:[ ("batch", batch); ("h", h); ("w", w) ]
    ~outputs:[ probs ]
