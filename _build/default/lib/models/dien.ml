(* DIEN-style CTR recommendation model: item/category embeddings for a
   dynamic-length user behaviour history, target-item attention over the
   history, and a small MLP with sigmoid-gated ("dice"-like)
   activations. Large batches, tiny tensors, heavy elementwise — the
   regime where framework/launch overhead dominates and fusion pays the
   most. *)

module Sym = Symshape.Sym
module B = Ir.Builder
module C = Common
module Dtype = Tensor.Dtype

type config = { items : int; cats : int; emb : int; mlp : int list }

let default = { items = 100000; cats = 1000; emb = 32; mlp = [ 200; 80 ] }
let tiny = { items = 50; cats = 10; emb = 8; mlp = [ 16; 8 ] }

let dice ctx x =
  (* x * sigmoid(a * x) with a learned scalar-ish gate *)
  let g = ctx.C.g in
  B.mul g x (B.logistic g (B.mulf g x 0.9))

let build ?(config = default) () : C.built =
  let ctx = C.new_ctx () in
  let g = ctx.C.g in
  let batch = C.fresh_dim ~name:"batch" ~lb:1 ~ub:1024 ~likely:[ 128; 256 ] ctx in
  let hist = C.fresh_dim ~name:"hist" ~lb:1 ~ub:100 ~likely:[ 20; 50 ] ctx in
  let hist_items = C.param ctx ~name:"hist_items" [| batch; hist |] Dtype.I32 (C.Ids config.items) in
  let hist_cats = C.param ctx ~name:"hist_cats" [| batch; hist |] Dtype.I32 (C.Ids config.cats) in
  let target_item = C.param ctx ~name:"target_item" [| batch |] Dtype.I32 (C.Ids config.items) in
  let target_cat = C.param ctx ~name:"target_cat" [| batch |] Dtype.I32 (C.Ids config.cats) in
  let hist_mask = C.param ctx ~name:"hist_mask" [| batch; hist |] Dtype.F32 C.Binary_mask in
  let item_table = C.weight ctx "item_emb" [ config.items; config.emb ] in
  let cat_table = C.weight ctx "cat_emb" [ config.cats; config.emb ] in
  let d = 2 * config.emb in
  (* history embedding [b, h, 2e]; target embedding [b, 2e] *)
  let hist_emb =
    B.concat g ~axis:2 [ B.gather g item_table hist_items; B.gather g cat_table hist_cats ]
  in
  let tgt_emb =
    B.concat g ~axis:1 [ B.gather g item_table target_item; B.gather g cat_table target_cat ]
  in
  (* attention scores: <hist, target> per position *)
  let tgt_b =
    B.broadcast g
      (B.reshape g tgt_emb [| batch; Sym.Static 1; Sym.Static d |])
      ~dims:[| 0; 1; 2 |] ~out:[| batch; hist; Sym.Static d |]
  in
  let scores = B.reduce_sum g (B.mul g hist_emb tgt_b) ~dims:[ 2 ] in
  let masked =
    B.add g scores (B.mulf g (B.subf g (B.neg g hist_mask) (-1.0)) (-1e9))
  in
  let probs = B.softmax g masked (* [b, h] *) in
  let pb =
    B.broadcast g
      (B.reshape g probs [| batch; hist; Sym.Static 1 |])
      ~dims:[| 0; 1; 2 |] ~out:[| batch; hist; Sym.Static d |]
  in
  let interest = B.reduce_sum g (B.mul g hist_emb pb) ~dims:[ 1 ] (* [b, 2e] *) in
  (* MLP over [target ; interest ; target*interest] *)
  let inter = B.mul g tgt_emb interest in
  let feats = B.concat g ~axis:1 [ tgt_emb; interest; inter ] in
  let din0 = 3 * d in
  let h, _ =
    List.fold_left
      (fun (x, din) dout ->
        let y = C.dense ctx ~name:(Printf.sprintf "mlp%d" dout) x ~din ~dout in
        (dice ctx y, dout))
      (feats, din0) config.mlp
  in
  let logit = C.dense ctx ~name:"out" h ~din:(List.nth config.mlp (List.length config.mlp - 1)) ~dout:1 in
  let score = B.logistic g logit in
  C.finish ctx ~name:"dien" ~dims:[ ("batch", batch); ("hist", hist) ] ~outputs:[ score ]
