lib/models/suite.mli: Common
