lib/models/common.mli: Ir Symshape Tensor
