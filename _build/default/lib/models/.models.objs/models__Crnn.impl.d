lib/models/crnn.ml: Array Common Ir List Printf Symshape Tensor
