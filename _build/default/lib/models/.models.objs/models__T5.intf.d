lib/models/t5.mli: Common
