lib/models/vit.ml: Array Common Ir Printf Symshape Tensor
