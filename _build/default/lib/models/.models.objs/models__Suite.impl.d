lib/models/suite.ml: Asr Bert Common Crnn Dien Fastspeech Gpt2 List Printf Seq2seq T5 Vit
