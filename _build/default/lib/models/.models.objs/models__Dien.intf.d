lib/models/dien.mli: Common
