lib/models/bert.ml: Common Ir Printf Symshape Tensor
