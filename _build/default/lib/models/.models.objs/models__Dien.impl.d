lib/models/dien.ml: Common Ir List Printf Symshape Tensor
