lib/models/asr.mli: Common
