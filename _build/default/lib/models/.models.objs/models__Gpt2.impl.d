lib/models/gpt2.ml: Common Ir Printf Symshape Tensor
