lib/models/fastspeech.ml: Common Ir Printf Symshape Tensor
