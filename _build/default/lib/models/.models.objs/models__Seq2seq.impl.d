lib/models/seq2seq.ml: Common Ir Printf Symshape Tensor
