lib/models/common.ml: Array Float Int64 Ir List Option Printf Symshape Tensor
