lib/models/gpt2.mli: Common
