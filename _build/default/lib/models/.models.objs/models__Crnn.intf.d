lib/models/crnn.mli: Common
