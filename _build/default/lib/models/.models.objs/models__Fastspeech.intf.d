lib/models/fastspeech.mli: Common
