lib/models/t5.ml: Common Ir Printf Symshape Tensor
