lib/models/seq2seq.mli: Common
