lib/models/asr.ml: Array Common Ir Printf Symshape Tensor
