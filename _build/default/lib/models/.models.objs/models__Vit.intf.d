lib/models/vit.mli: Common
