lib/models/bert.mli: Common
