(* BERT-base encoder for masked-LM-style inference: 12 layers, hidden
   768, 12 heads. Dynamic batch size and sequence length — the paper's
   flagship dynamic-shape workload. *)

module Sym = Symshape.Sym
module B = Ir.Builder
module C = Common
module Dtype = Tensor.Dtype

type config = { layers : int; hidden : int; heads : int; ffn : int; vocab : int; max_pos : int }

let base = { layers = 12; hidden = 768; heads = 12; ffn = 3072; vocab = 30522; max_pos = 512 }

(* A small configuration with identical structure, for data-plane tests. *)
let tiny = { layers = 2; hidden = 32; heads = 4; ffn = 64; vocab = 100; max_pos = 64 }

let build ?(config = base) () : C.built =
  let ctx = C.new_ctx () in
  let g = ctx.C.g in
  let batch = C.fresh_dim ~name:"batch" ~lb:1 ~ub:64 ~likely:[ 1; 4; 8 ] ctx in
  let seq = C.fresh_dim ~name:"seq" ~lb:1 ~ub:config.max_pos ~likely:[ 32; 64; 128 ] ctx in
  let ids = C.param ctx ~name:"input_ids" [| batch; seq |] Dtype.I32 (C.Ids config.vocab) in
  let mask = C.param ctx ~name:"attention_mask" [| batch; seq |] Dtype.F32 C.Binary_mask in
  let x =
    C.embed ctx ~name:"emb" ids ~batch_dim:batch ~seq_dim:seq ~vocab:config.vocab
      ~max_pos:config.max_pos ~hidden:config.hidden
  in
  let x = C.layernorm ctx ~name:"emb.ln" x ~hidden:config.hidden in
  let bias = C.mask_to_bias ctx ~heads:config.heads ~batch_dim:batch ~seq_dim:seq mask in
  let rec stack x l =
    if l >= config.layers then x
    else
      stack
        (C.encoder_layer ctx
           ~name:(Printf.sprintf "layer%d" l)
           x ~heads:config.heads ~hidden:config.hidden ~inner:config.ffn
           ~mask_bias:(Some bias))
        (l + 1)
  in
  let x = stack x 0 in
  (* pooled classifier head on the first token *)
  let first = B.slice g x ~starts:[| 0; 0; 0 |] ~limits:[| -1; 1; -1 |] ~strides:[| 1; 1; 1 |] in
  let pooled = B.reshape g first [| batch; Sym.Static config.hidden |] in
  let cls = C.dense ctx ~name:"pooler" pooled ~din:config.hidden ~dout:config.hidden in
  let logits = B.tanh g cls in
  C.finish ctx ~name:"bert" ~dims:[ ("batch", batch); ("seq", seq) ] ~outputs:[ x; logits ]
