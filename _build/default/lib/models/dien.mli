(** DIEN-style CTR model: embeddings for a dynamic-length behaviour
    history, target attention, sigmoid-gated MLP. Large batches, tiny
    tensors: the overhead-dominated regime. *)

type config = { items : int; cats : int; emb : int; mlp : int list }

val default : config
(** paper scale *)

val tiny : config
(** structurally identical test scale *)

val build : ?config:config -> unit -> Common.built
