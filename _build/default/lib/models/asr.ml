(* Conformer-lite ASR encoder: 2x stride-2 convolutional subsampling
   over a dynamic number of audio frames, a transformer encoder stack on
   the subsampled sequence, and a CTC-style per-frame softmax over the
   token vocabulary (with greedy argmax decode).

   The time axis goes through two affine derivations (the conv strides)
   and a static-feature flatten before becoming the attention sequence
   axis — the 1-D sibling of the ViT patch pipeline. *)

module Sym = Symshape.Sym
module B = Ir.Builder
module C = Common
module Dtype = Tensor.Dtype

type config = { layers : int; hidden : int; heads : int; ffn : int; mel : int; vocab : int }

let default = { layers = 6; hidden = 256; heads = 4; ffn = 1024; mel = 80; vocab = 512 }
let tiny = { layers = 1; hidden = 32; heads = 2; ffn = 64; mel = 8; vocab = 12 }

let build ?(config = default) () : C.built =
  let ctx = C.new_ctx () in
  let g = ctx.C.g in
  let batch = C.fresh_dim ~name:"batch" ~lb:1 ~ub:32 ~likely:[ 1; 8 ] ctx in
  let frames = C.fresh_dim ~name:"frames" ~lb:16 ~ub:4000 ~likely:[ 500; 1500 ] ctx in
  (* log-mel features as an image: [b, frames, mel, 1] *)
  let feats =
    C.param ctx ~name:"features" [| batch; frames; Sym.Static config.mel; Sym.Static 1 |]
      Dtype.F32 (C.Normal 1.0)
  in
  (* two stride-2 3x3 convs subsample time (and mel) by 4 *)
  let c1 = C.weight ctx "sub1.w" [ 3; 3; 1; 32 ] in
  let x = B.relu g (B.conv2d g feats c1 ~strides:(2, 2) ~padding:(1, 1)) in
  let c2 = C.weight ctx "sub2.w" [ 3; 3; 32; 32 ] in
  let x = B.relu g (B.conv2d g x c2 ~strides:(2, 2) ~padding:(1, 1)) in
  (* [b, t', mel', 32] -> [b, t', mel'*32] -> dense to hidden *)
  let shape = (Ir.Graph.inst g x).Ir.Graph.shape in
  let t' = shape.(1) in
  let melc =
    match (Sym.static_value shape.(2), Sym.static_value shape.(3)) with
    | Some m, Some c -> m * c
    | _ -> invalid_arg "asr: subsampled mel and channels must be static"
  in
  let flat = B.reshape g x [| batch; t'; Sym.Static melc |] in
  let h = C.dense ctx ~name:"proj" flat ~din:melc ~dout:config.hidden in
  let rec stack x l =
    if l >= config.layers then x
    else
      stack
        (C.encoder_layer ctx
           ~name:(Printf.sprintf "enc%d" l)
           x ~heads:config.heads ~hidden:config.hidden ~inner:config.ffn ~mask_bias:None)
        (l + 1)
  in
  let enc = stack h 0 in
  let logits = C.dense ctx ~name:"ctc" enc ~din:config.hidden ~dout:config.vocab in
  let probs = B.softmax g logits in
  let decoded = B.argmax g probs ~dim:2 in
  C.finish ctx ~name:"asr"
    ~dims:[ ("batch", batch); ("frames", frames) ]
    ~outputs:[ probs; decoded ]
