(** BERT-base encoder (12 layers, hidden 768): dynamic batch and
    sequence length. The flagship dynamic-shape workload. *)

type config = { layers : int; hidden : int; heads : int; ffn : int; vocab : int; max_pos : int }

val base : config
(** paper scale *)

val tiny : config
(** structurally identical test scale *)

val build : ?config:config -> unit -> Common.built
