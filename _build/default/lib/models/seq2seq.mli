(** Transformer-base encoder-decoder: dynamic batch plus two
    independent dynamic lengths (source, target). *)

type config = { layers : int; hidden : int; heads : int; ffn : int; vocab : int; max_pos : int }

val base : config
(** paper scale *)

val tiny : config
(** structurally identical test scale *)

val build : ?config:config -> unit -> Common.built
