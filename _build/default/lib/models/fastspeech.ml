(* FastSpeech2-style TTS acoustic model: phoneme-side transformer
   encoder, a length regulator that expands to the frame timeline, and a
   frame-side decoder emitting mel spectrogram frames.

   The real length regulator's output length is data-dependent (sum of
   predicted durations); following the substitution rule, the expanded
   frame count enters as an independent dynamic input dimension together
   with a gather map from frames to phonemes — same code path, no data
   dependence. *)

module Sym = Symshape.Sym
module B = Ir.Builder
module C = Common
module Dtype = Tensor.Dtype

type config = { layers : int; hidden : int; heads : int; ffn : int; phones : int; mel : int }

let default = { layers = 4; hidden = 256; heads = 2; ffn = 1024; phones = 80; mel = 80 }
let tiny = { layers = 1; hidden = 32; heads = 2; ffn = 64; phones = 10; mel = 8 }

let build ?(config = default) () : C.built =
  let ctx = C.new_ctx () in
  let g = ctx.C.g in
  let batch = C.fresh_dim ~name:"batch" ~lb:1 ~ub:16 ~likely:[ 1; 4 ] ctx in
  let phon = C.fresh_dim ~name:"phon" ~lb:1 ~ub:256 ~likely:[ 48; 96 ] ctx in
  let frames = C.fresh_dim ~name:"frames" ~lb:1 ~ub:2048 ~likely:[ 400; 800 ] ctx in
  let ids = C.param ctx ~name:"phoneme_ids" [| batch; phon |] Dtype.I32 (C.Ids config.phones) in
  (* frame -> flattened (batch*phon) index map produced by the duration
     model upstream *)
  let expand_map =
    C.param ctx ~name:"expand_map" [| batch; frames |] Dtype.I32 (C.Ids 1)
  in
  let x =
    C.embed ctx ~name:"enc.emb" ids ~batch_dim:batch ~seq_dim:phon ~vocab:config.phones
      ~max_pos:256 ~hidden:config.hidden
  in
  let rec enc x l =
    if l >= config.layers then x
    else
      enc
        (C.encoder_layer ctx
           ~name:(Printf.sprintf "enc%d" l)
           x ~heads:config.heads ~hidden:config.hidden ~inner:config.ffn ~mask_bias:None)
        (l + 1)
  in
  let enc_out = enc x 0 in
  (* length regulation: flatten phoneme states and gather per frame *)
  let bp = C.fresh_dim ~name:"bp" ctx in
  let flat = B.reshape g enc_out [| bp; Sym.Static config.hidden |] in
  let expanded = B.gather g flat expand_map (* [b, frames, hidden] *) in
  let rec dec x l =
    if l >= 2 * config.layers then x
    else
      dec
        (C.encoder_layer ctx
           ~name:(Printf.sprintf "dec%d" (l - config.layers))
           x ~heads:config.heads ~hidden:config.hidden ~inner:config.ffn ~mask_bias:None)
        (l + 1)
  in
  let dec_out = dec expanded config.layers in
  let mel = C.dense ctx ~name:"mel_head" dec_out ~din:config.hidden ~dout:config.mel in
  C.finish ctx ~name:"fastspeech"
    ~dims:[ ("batch", batch); ("phon", phon); ("frames", frames) ]
    ~outputs:[ mel ]
