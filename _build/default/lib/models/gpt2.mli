(** GPT-2-small causal decoder prefill: dynamic batch and prompt
    length; the causal mask is computed in-graph from iota. *)

type config = { layers : int; hidden : int; heads : int; ffn : int; vocab : int; max_pos : int }

val small : config
(** paper scale *)

val tiny : config
(** structurally identical test scale *)

val build : ?config:config -> unit -> Common.built
