(* GPT-2-small-style causal decoder (prefill step): 12 layers, hidden
   768. Dynamic batch and prompt length; the causal mask is computed
   in-graph from iota, so it adapts to any sequence length. *)

module Sym = Symshape.Sym
module B = Ir.Builder
module C = Common
module Dtype = Tensor.Dtype

type config = { layers : int; hidden : int; heads : int; ffn : int; vocab : int; max_pos : int }

let small = { layers = 12; hidden = 768; heads = 12; ffn = 3072; vocab = 50257; max_pos = 1024 }
let tiny = { layers = 2; hidden = 32; heads = 4; ffn = 64; vocab = 100; max_pos = 64 }

let build ?(config = small) () : C.built =
  let ctx = C.new_ctx () in
  let g = ctx.C.g in
  let batch = C.fresh_dim ~name:"batch" ~lb:1 ~ub:32 ~likely:[ 1; 4 ] ctx in
  let seq = C.fresh_dim ~name:"seq" ~lb:1 ~ub:config.max_pos ~likely:[ 64; 256 ] ctx in
  let ids = C.param ctx ~name:"input_ids" [| batch; seq |] Dtype.I32 (C.Ids config.vocab) in
  let x =
    C.embed ctx ~name:"emb" ids ~batch_dim:batch ~seq_dim:seq ~vocab:config.vocab
      ~max_pos:config.max_pos ~hidden:config.hidden
  in
  (* causal additive bias: rows >= cols allowed, else -1e9 *)
  let rows = B.iota g ~out:[| seq; seq |] ~dim:0 in
  let cols = B.iota g ~out:[| seq; seq |] ~dim:1 in
  let allowed = B.cmp g Ir.Op.Ge rows cols in
  let bias2d = B.select g allowed (B.constf g 0.0) (B.constf g (-1e9)) in
  let re = B.reshape g bias2d [| Sym.Static 1; Sym.Static 1; seq; seq |] in
  let bias =
    B.broadcast g re ~dims:[| 0; 1; 2; 3 |]
      ~out:[| batch; Sym.Static config.heads; seq; seq |]
  in
  let rec stack x l =
    if l >= config.layers then x
    else
      stack
        (C.encoder_layer ctx
           ~name:(Printf.sprintf "block%d" l)
           x ~heads:config.heads ~hidden:config.hidden ~inner:config.ffn
           ~mask_bias:(Some bias))
        (l + 1)
  in
  let x = stack x 0 in
  let x = C.layernorm ctx ~name:"ln_f" x ~hidden:config.hidden in
  C.finish ctx ~name:"gpt2" ~dims:[ ("batch", batch); ("seq", seq) ] ~outputs:[ x ]
