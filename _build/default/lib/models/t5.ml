(* T5-small-style encoder with relative position bias: 6 layers, hidden
   512. The bias is computed in-graph — iota distance matrix, clipped
   bucketing, gather from a learned table — so it follows the dynamic
   sequence length, exercising iota/cast/gather under symbolic shapes. *)

module Sym = Symshape.Sym
module B = Ir.Builder
module C = Common
module Dtype = Tensor.Dtype

type config = { layers : int; hidden : int; heads : int; ffn : int; vocab : int; buckets : int }

let small = { layers = 6; hidden = 512; heads = 8; ffn = 2048; vocab = 32128; buckets = 32 }
let tiny = { layers = 1; hidden = 32; heads = 4; ffn = 64; vocab = 100; buckets = 8 }

(* |i - j| clipped to [0, buckets): a simplified relative-position
   bucketing that keeps the data flow of the real one. *)
let relative_bias ctx ~config ~batch_dim ~seq_dim =
  let g = ctx.C.g in
  let rows = B.iota g ~out:[| seq_dim; seq_dim |] ~dim:0 in
  let cols = B.iota g ~out:[| seq_dim; seq_dim |] ~dim:1 in
  let dist = B.abs g (B.sub g rows cols) in
  let clipped = B.min_ g dist (B.constf g (float_of_int (config.buckets - 1))) in
  let idx = B.cast g Dtype.I32 clipped in
  let table = C.weight ctx "rel_bias" [ config.buckets; config.heads ] in
  let gathered = B.gather g table idx (* [s, s, heads] *) in
  let perm = B.transpose g gathered [| 2; 0; 1 |] (* [heads, s, s] *) in
  let re =
    B.reshape g perm [| Sym.Static 1; Sym.Static config.heads; seq_dim; seq_dim |]
  in
  B.broadcast g re ~dims:[| 0; 1; 2; 3 |]
    ~out:[| batch_dim; Sym.Static config.heads; seq_dim; seq_dim |]

let build ?(config = small) () : C.built =
  let ctx = C.new_ctx () in
  let batch = C.fresh_dim ~name:"batch" ~lb:1 ~ub:64 ~likely:[ 1; 8 ] ctx in
  let seq = C.fresh_dim ~name:"seq" ~lb:1 ~ub:512 ~likely:[ 32; 128 ] ctx in
  let ids = C.param ctx ~name:"input_ids" [| batch; seq |] Dtype.I32 (C.Ids config.vocab) in
  let x =
    C.embed ctx ~name:"emb" ids ~batch_dim:batch ~seq_dim:seq ~vocab:config.vocab
      ~max_pos:512 ~hidden:config.hidden
  in
  let bias = relative_bias ctx ~config ~batch_dim:batch ~seq_dim:seq in
  let rec stack x l =
    if l >= config.layers then x
    else
      stack
        (C.encoder_layer ctx
           ~name:(Printf.sprintf "block%d" l)
           x ~heads:config.heads ~hidden:config.hidden ~inner:config.ffn
           ~mask_bias:(Some bias))
        (l + 1)
  in
  let x = stack x 0 in
  let x = C.layernorm ctx ~name:"final_ln" x ~hidden:config.hidden in
  C.finish ctx ~name:"t5" ~dims:[ ("batch", batch); ("seq", seq) ] ~outputs:[ x ]
