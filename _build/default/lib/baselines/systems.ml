(* The seven comparator systems plus BladeDISC itself, as strategies
   (see executor.ml). Knob values are calibrated so that each system's
   *mechanism* is faithful (what fuses, what pads, what recompiles, what
   dispatch costs); see EXPERIMENTS.md for the mapping to the paper. *)

module Planner = Fusion.Planner
module Kernel = Codegen.Kernel
module E = Executor

let cap_mem x (w : Gpusim.Cost.kernel_work) =
  { w with Gpusim.Cost.mem_efficiency = Float.min 0.95 (w.Gpusim.Cost.mem_efficiency *. x) }

let cap_compute x (w : Gpusim.Cost.kernel_work) =
  { w with Gpusim.Cost.compute_efficiency = Float.min 0.85 (w.Gpusim.Cost.compute_efficiency *. x) }

let no_pad env = env
let pad_pow2 env = List.map (fun (n, v) -> (n, E.bucket v)) env

(* PyTorch eager: every operator is its own kernel behind the Python
   dispatcher; no compilation of any kind. *)
let pytorch : E.strategy =
  {
    s_name = "pytorch";
    s_description = "eager op-by-op, Python dispatch, no fusion";
    planner = Planner.no_fusion_config;
    codegen = Kernel.no_speculation_config;
    host_overhead_us = 4.0;
    fixed_host_us = 20.0;
    pad_env = no_pad;
    tune = E.id_tune;
    compile_cost_ms = (fun ~num_kernels:_ ~num_insts:_ -> 0.0);
    compile_per_signature = false;
  }

(* TorchScript: the Python interpreter is gone, but its fuser needs
   static shapes, so on dynamic-shape graphs execution stays op-by-op. *)
let torchscript : E.strategy =
  {
    s_name = "torchscript";
    s_description = "scripted op-by-op; fuser requires static shapes";
    planner = Planner.static_only_config;
    codegen = Kernel.no_speculation_config;
    host_overhead_us = 2.4;
    fixed_host_us = 10.0;
    pad_env = no_pad;
    tune = E.id_tune;
    compile_cost_ms = (fun ~num_kernels:_ ~num_insts -> 0.5 *. float_of_int num_insts);
    compile_per_signature = false;
  }

(* ONNX Runtime: lean C++ dispatch plus a library of hand-fused kernels
   (attention softmax, layernorm, gelu); fusion scope is bounded by the
   pattern library rather than by shape reasoning. *)
let onnxruntime : E.strategy =
  {
    s_name = "onnxrt";
    s_description = "op-by-op with pattern-library fused kernels";
    planner = { Planner.default_config with max_cluster_size = Some 6 };
    codegen = Kernel.no_speculation_config;
    host_overhead_us = 1.6;
    fixed_host_us = 6.0;
    pad_env = no_pad;
    tune = cap_mem 0.95;
    compile_cost_ms = (fun ~num_kernels:_ ~num_insts -> 1.0 *. float_of_int num_insts);
    compile_per_signature = false;
  }

(* XLA: a strong static-shape fusion compiler. Dynamic dims are rounded
   to power-of-two buckets; each new bucket signature triggers a full
   compilation, and execution pays for the padding. No shared-memory
   stitch fusion. *)
let xla : E.strategy =
  {
    s_name = "xla";
    s_description = "static compiler: pow2 bucketing + padding, compile per bucket";
    planner = Planner.no_stitch_config;
    codegen = Kernel.default_config;
    host_overhead_us = 0.5;
    fixed_host_us = 3.0;
    pad_env = pad_pow2;
    tune = E.id_tune;
    compile_cost_ms =
      (fun ~num_kernels ~num_insts ->
        (150.0 *. float_of_int num_kernels) +. (2.0 *. float_of_int num_insts) +. 3000.0);
    compile_per_signature = true;
  }

(* TVM: per-shape autotuned kernels — excellent steady-state kernels for
   shapes it has tuned, at an enormous per-signature tuning cost; the
   relay graph runtime adds moderate dispatch overhead. *)
let tvm : E.strategy =
  {
    s_name = "tvm";
    s_description = "dynamic-shape Relay: default schedules, graph runtime";
    planner = Planner.no_stitch_config;
    codegen = Kernel.no_speculation_config;
    host_overhead_us = 2.6;
    fixed_host_us = 10.0;
    pad_env = no_pad;
    tune = (fun w -> cap_compute 0.7 (cap_mem 0.62 w));
    compile_cost_ms =
      (fun ~num_kernels ~num_insts:_ ->
        (* autotuning: ~trials x measurement per distinct kernel *)
        (2500.0 *. float_of_int num_kernels) +. 30000.0);
    compile_per_signature = true;
  }

(* Torch Inductor (dynamic shapes): symbolic sizes with guards; good
   pointwise/reduction fusion but symbol reasoning does not cross
   reshapes (no product facts), and dispatch pays guard evaluation. *)
let inductor : E.strategy =
  {
    s_name = "inductor";
    s_description = "dynamic-shape guards + Triton; no product-equality reasoning";
    planner =
      { Planner.default_config with oracle = Planner.Symbolic_dims; enable_stitch = false };
    codegen = Kernel.no_speculation_config;
    host_overhead_us = 11.0;
    fixed_host_us = 70.0;
    pad_env = no_pad;
    tune = cap_mem 0.75;
    compile_cost_ms =
      (fun ~num_kernels ~num_insts:_ -> (250.0 *. float_of_int num_kernels) +. 8000.0);
    compile_per_signature = false;
  }

(* TensorRT: offline-built engine with dynamic-shape optimization
   profiles; kernels are the best tuned of all systems, fusion is
   strong but static (no dynamic stitch), engine build is very slow. *)
let tensorrt : E.strategy =
  {
    s_name = "tensorrt";
    s_description = "engine with optimization profiles; best static kernels";
    planner = Planner.no_stitch_config;
    codegen = Kernel.default_config;
    host_overhead_us = 0.9;
    fixed_host_us = 6.0;
    pad_env = no_pad;
    tune = (fun w -> cap_compute 1.12 (cap_mem 0.66 w));
    compile_cost_ms =
      (fun ~num_kernels ~num_insts:_ ->
        (800.0 *. float_of_int num_kernels) +. 60000.0);
    compile_per_signature = false;
  }

(* BladeDISC: the full pipeline from this repository — symbolic shapes,
   kLoop/kInput/kStitch fusion, speculative codegen, lean RAL runtime;
   one compilation serves all shapes. *)
let bladedisc : E.strategy =
  {
    s_name = "bladedisc";
    s_description = "this work: symbolic shapes, stitch fusion, speculation";
    planner = Planner.default_config;
    codegen = Kernel.default_config;
    host_overhead_us = 0.3;
    fixed_host_us = 1.0;
    pad_env = no_pad;
    tune = E.id_tune;
    compile_cost_ms =
      (fun ~num_kernels ~num_insts ->
        (120.0 *. float_of_int num_kernels) +. (1.5 *. float_of_int num_insts) +. 400.0);
    compile_per_signature = false;
  }

let all_strategies =
  [ pytorch; torchscript; tvm; onnxruntime; xla; inductor; tensorrt; bladedisc ]

let baselines_only = List.filter (fun s -> s.E.s_name <> "bladedisc") all_strategies

let by_name name =
  match List.find_opt (fun s -> s.E.s_name = name) all_strategies with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "unknown system %s" name)

let make name (built : Models.Common.built) = E.make_from_strategy (by_name name) built
