lib/baselines/systems.ml: Codegen Executor Float Fusion Gpusim List Models Printf
