lib/baselines/systems.mli: Executor Models
