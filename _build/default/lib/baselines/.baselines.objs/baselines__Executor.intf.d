lib/baselines/executor.mli: Codegen Fusion Gpusim Models Runtime Symshape
