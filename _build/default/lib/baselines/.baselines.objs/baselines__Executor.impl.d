lib/baselines/executor.ml: Codegen Fusion Gpusim Hashtbl Ir List Models Runtime Symshape
