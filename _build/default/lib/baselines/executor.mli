(** Baseline executors: each comparator system as a {e dynamic-shape
    strategy} over the same IR and device model — fusion scope & shape
    knowledge, per-kernel dispatch cost, padding policy, kernel tuning,
    and (re)compilation behaviour. *)

type run_result = {
  latency_us : float;  (** steady-state per-inference latency *)
  compile_ms : float;  (** one-off compile/tuning triggered by this call *)
  profile : Runtime.Profile.t;
  padded : bool;  (** cost was charged at padded shapes *)
}

type t = {
  name : string;
  run : device:Gpusim.Device.t -> (string * int) list -> run_result;
  total_compile_ms : unit -> float;
  description : string;
}

val bucket : int -> int
(** Round up to the next power of two. *)

val binding_for :
  Models.Common.built -> (string * int) list -> Symshape.Table.binding

type strategy = {
  s_name : string;
  s_description : string;
  planner : Fusion.Planner.config;
  codegen : Codegen.Kernel.config;
  host_overhead_us : float;
  fixed_host_us : float;  (** per-inference host cost (guards, Python loop) *)
  pad_env : (string * int) list -> (string * int) list;
  tune : Gpusim.Cost.kernel_work -> Gpusim.Cost.kernel_work;
  compile_cost_ms : num_kernels:int -> num_insts:int -> float;
  compile_per_signature : bool;
      (** recompile on each new (padded) shape signature (XLA, TVM) *)
}

val id_tune : Gpusim.Cost.kernel_work -> Gpusim.Cost.kernel_work

val make_from_strategy : strategy -> Models.Common.built -> t
(** Compile the model under the strategy; the returned executor caches
    shape signatures and accumulates one-off compilation costs. *)
