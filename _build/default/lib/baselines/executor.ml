(* Baseline executors.

   Each comparator system is modeled as a *dynamic-shape strategy* over
   the same graph IR and the same device model — the quantity the paper
   actually compares. A strategy decides: how operators fuse (scope and
   shape knowledge), what per-kernel host overhead dispatch pays, whether
   dynamic dims are padded to buckets, how kernels are tuned, and when
   (re)compilation stalls happen. All knobs are listed here and
   documented per system in EXPERIMENTS.md. *)

module Graph = Ir.Graph
module Table = Symshape.Table
module Sym = Symshape.Sym
module Planner = Fusion.Planner
module Kernel = Codegen.Kernel
module Executable = Runtime.Executable
module Profile = Runtime.Profile

type run_result = {
  latency_us : float; (* steady-state per-inference latency *)
  compile_ms : float; (* one-off compilation/tuning triggered by this call *)
  profile : Profile.t;
  padded : bool; (* whether cost was charged at padded shapes *)
}

type t = {
  name : string;
  run : device:Gpusim.Device.t -> (string * int) list -> run_result;
  total_compile_ms : unit -> float; (* cumulative one-off cost so far *)
  description : string;
}

(* Round a dim value up to the next power of two (shape bucketing). *)
let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)
let bucket v = next_pow2 v 1

let binding_for (m : Models.Common.built) env =
  let tab = Graph.symtab m.Models.Common.graph in
  let bnd = Table.empty_binding () in
  List.iter (fun (n, v) -> Table.bind_dim tab bnd (Models.Common.dim_exn m n) v) env;
  bnd

(* Shared skeleton: compile once with the given strategy; each run
   simulates under the (possibly transformed) shape environment. *)
type strategy = {
  s_name : string;
  s_description : string;
  planner : Planner.config;
  codegen : Kernel.config;
  host_overhead_us : float;
  fixed_host_us : float; (* per-inference host cost (e.g. guard checks) *)
  pad_env : (string * int) list -> (string * int) list; (* cost-shape transform *)
  tune : Gpusim.Cost.kernel_work -> Gpusim.Cost.kernel_work;
  (* one-off cost charged the first time a shape signature is seen;
     receives the signature and the number of kernels *)
  compile_cost_ms : num_kernels:int -> num_insts:int -> float;
  compile_per_signature : bool; (* recompile per new (padded) signature? *)
}

let id_tune w = w

let make_from_strategy (s : strategy) (built : Models.Common.built) : t =
  ignore (Ir.Passes.run_all built.Models.Common.graph);
  let g = built.Models.Common.graph in
  let plan = Planner.plan ~config:s.planner g in
  let exe =
    Executable.compile ~codegen:s.codegen ~host_overhead_us:s.host_overhead_us g plan
  in
  let seen : (int list, unit) Hashtbl.t = Hashtbl.create 8 in
  let total_compile = ref 0.0 in
  let base_cost =
    s.compile_cost_ms ~num_kernels:(Executable.num_kernels exe) ~num_insts:(Graph.num_insts g)
  in
  (* systems that compile per signature pay nothing up front *)
  if not s.compile_per_signature then total_compile := base_cost;
  let first_call = ref true in
  let run ~device env =
    let cost_env = s.pad_env env in
    let signature = List.map snd cost_env in
    let compile_ms =
      if s.compile_per_signature then
        if Hashtbl.mem seen signature then 0.0
        else begin
          Hashtbl.add seen signature ();
          total_compile := !total_compile +. base_cost;
          base_cost
        end
      else if !first_call then base_cost
      else 0.0
    in
    first_call := false;
    let bnd = binding_for built cost_env in
    let profile = Executable.simulate ~device ~tune:s.tune exe bnd in
    profile.Profile.host_us <- profile.Profile.host_us +. s.fixed_host_us;
    {
      latency_us = Profile.total_us profile;
      compile_ms;
      profile;
      padded = cost_env <> env;
    }
  in
  {
    name = s.s_name;
    run;
    total_compile_ms = (fun () -> !total_compile);
    description = s.s_description;
  }
