(** The seven comparator systems plus BladeDISC itself, as calibrated
    strategies. The mechanisms are documented per system in
    EXPERIMENTS.md (E1 table); knob values are calibrated so the
    end-to-end averages land in the paper's bands (asserted by tests). *)

val pytorch : Executor.strategy
val torchscript : Executor.strategy
val onnxruntime : Executor.strategy
val xla : Executor.strategy
val tvm : Executor.strategy
val inductor : Executor.strategy
val tensorrt : Executor.strategy
val bladedisc : Executor.strategy

val all_strategies : Executor.strategy list
val baselines_only : Executor.strategy list

val by_name : string -> Executor.strategy
(** @raise Invalid_argument on unknown names. *)

val make : string -> Models.Common.built -> Executor.t
