(** Shape-constraint coverage statistics (experiment E8): how much the
    symbolic representation proves about a model's shapes. *)

type t = {
  num_insts : int;
  num_symbols : int;
  num_classes : int;  (** distinct equality classes among dynamic dims *)
  num_product_facts : int;
  dynamic_dim_slots : int;  (** symbolic dims appearing in inst shapes *)
  proven_equal_pairs : int;  (** sampled dim-slot pairs proven equal *)
  total_pairs_sampled : int;
}

val coverage : Ir.Graph.t -> t
val to_string : t -> string
