(* Shape-constraint coverage statistics (experiment E8): how much does
   the symbolic representation actually prove about a model's shapes? *)

module Graph = Ir.Graph
module Sym = Symshape.Sym
module Table = Symshape.Table

type t = {
  num_insts : int;
  num_symbols : int; (* symbols ever created *)
  num_classes : int; (* distinct equality classes among dynamic dims *)
  num_product_facts : int;
  dynamic_dim_slots : int; (* symbolic dims appearing in inst shapes *)
  proven_equal_pairs : int; (* pairs of distinct dim slots proven equal *)
  total_pairs_sampled : int;
}

let coverage (g : Graph.t) : t =
  let tab = Graph.symtab g in
  (* collect the dynamic dims appearing in instruction shapes *)
  let slots = ref [] in
  Graph.iter g (fun i ->
      Array.iter
        (fun d -> match Table.resolve tab d with Sym.Sym _ -> slots := d :: !slots | _ -> ())
        i.shape);
  let slots = Array.of_list !slots in
  let n = Array.length slots in
  (* distinct classes among the slots *)
  let class_reps = Hashtbl.create 16 in
  Array.iter
    (fun d ->
      match Table.resolve tab d with
      | Sym.Sym root -> Hashtbl.replace class_reps root ()
      | Sym.Static _ -> ())
    slots;
  (* sample dim-slot pairs for equality coverage (cap the quadratic) *)
  let sampled = ref 0 and equal = ref 0 in
  let stride = max 1 (n / 128) in
  let i = ref 0 in
  while !i < n do
    let j = ref (!i + stride) in
    while !j < n do
      incr sampled;
      if Table.equal_dims tab slots.(!i) slots.(!j) then incr equal;
      j := !j + stride
    done;
    i := !i + stride
  done;
  {
    num_insts = Graph.num_insts g;
    num_symbols = Table.num_symbols tab;
    num_classes = Hashtbl.length class_reps;
    num_product_facts = Table.num_product_facts tab;
    dynamic_dim_slots = n;
    proven_equal_pairs = !equal;
    total_pairs_sampled = !sampled;
  }

let to_string s =
  Printf.sprintf
    "insts=%d symbols=%d classes=%d product_facts=%d dyn_slots=%d equal_pairs=%d/%d"
    s.num_insts s.num_symbols s.num_classes s.num_product_facts s.dynamic_dim_slots
    s.proven_equal_pairs s.total_pairs_sampled
