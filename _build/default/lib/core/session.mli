(** Serving sessions: compile a model once, answer requests at arbitrary
    dynamic shapes, and track latency percentiles. *)

type t

type stats = {
  requests : int;
  compile_ms : float;  (** the single up-front compilation *)
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  max_us : float;
}

val create :
  ?options:Compiler.options -> ?device:Gpusim.Device.t -> Models.Common.built -> t
(** Compiles immediately; every later request reuses the artifact. *)

val serve : t -> (string * int) list -> Runtime.Profile.t
(** Cost-only request at named dynamic-dim values
    (e.g. [\[("batch", 4); ("seq", 73)\]]). *)

val serve_data : t -> Tensor.Nd.t list -> Tensor.Nd.t list * Runtime.Profile.t
(** Data-plane request on real tensors. *)

val stats : t -> stats
val stats_to_string : stats -> string
