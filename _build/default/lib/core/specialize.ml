(* Hot-shape specialization: BladeDISC's hybrid static/dynamic mode.

   Next to the shape-generic artifact, compile fully static variants
   for a few hot shape signatures (by default, the cartesian product of
   the dims' likely values). A request whose signature matches a hot
   shape runs the static variant — on which every fusion decision and
   speculation guard resolved at compile time — and anything else falls
   back to the generic artifact. Unlike a bucketing compiler, a miss
   never stalls: the generic artifact always works. *)

module Common = Models.Common
module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph

type t = {
  built : Common.built;
  generic : Compiler.compiled;
  hot : ((string * int) list * Compiler.compiled) list; (* sorted envs *)
  mutable hits : int;
  mutable misses : int;
}

let norm env = List.sort compare env

(* Default hot set: cartesian product of each dim's likely values
   (capped to avoid explosion). *)
let default_hot_envs (built : Common.built) : (string * int) list list =
  let tab = Graph.symtab built.Common.graph in
  let axes =
    List.map
      (fun (name, d) ->
        let vs = Table.likely_values tab d in
        (name, if vs = [] then [ Table.lower_bound tab d ] else vs))
      built.Common.dims
  in
  let product =
    List.fold_left
      (fun acc (name, vs) ->
        List.concat_map (fun env -> List.map (fun v -> (name, v) :: env) vs) acc)
      [ [] ] axes
  in
  List.filteri (fun i _ -> i < 16) (List.map List.rev product)

let create ?(options = Compiler.default_options) ?hot_envs (built : Common.built) : t =
  let envs = Option.value hot_envs ~default:(default_hot_envs built) in
  let generic = Compiler.compile ~options built.Common.graph in
  let hot =
    List.map
      (fun env ->
        let bind =
          List.map (fun (name, v) -> (Common.dim_exn built name, v)) env
        in
        let static_g = Ir.Clone.clone ~bind built.Common.graph in
        (norm env, Compiler.compile ~options static_g))
      envs
  in
  { built; generic; hot; hits = 0; misses = 0 }

let total_compile_ms (t : t) =
  t.generic.Compiler.compile_time_ms
  +. List.fold_left (fun acc (_, c) -> acc +. c.Compiler.compile_time_ms) 0.0 t.hot

(* Cost-only request: exact signature match uses the static variant. *)
let serve ?(device = Gpusim.Device.a10) (t : t) (env : (string * int) list) :
    Runtime.Profile.t * [ `Hot | `Generic ] =
  match List.assoc_opt (norm env) t.hot with
  | Some c ->
      t.hits <- t.hits + 1;
      (* the static variant has no dynamic dims left to bind *)
      (Compiler.simulate ~device c [], `Hot)
  | None ->
      t.misses <- t.misses + 1;
      let dims = List.map (fun (n, v) -> (Common.dim_exn t.built n, v)) env in
      (Compiler.simulate ~device t.generic dims, `Generic)
