lib/core/stats.ml: Array Hashtbl Ir Printf Symshape
