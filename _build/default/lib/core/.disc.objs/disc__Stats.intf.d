lib/core/stats.mli: Ir
