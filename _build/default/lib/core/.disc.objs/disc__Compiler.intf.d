lib/core/compiler.mli: Codegen Fusion Gpusim Ir Runtime Symshape Tensor
