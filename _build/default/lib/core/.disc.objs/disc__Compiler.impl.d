lib/core/compiler.ml: Codegen Fusion Gpusim Ir List Runtime Symshape Tensor
