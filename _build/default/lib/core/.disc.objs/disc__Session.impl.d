lib/core/session.ml: Array Compiler Gpusim List Models Printf Runtime Tensor
