lib/core/session.mli: Compiler Gpusim Models Runtime Tensor
