lib/core/specialize.mli: Compiler Gpusim Models Runtime
