lib/core/specialize.ml: Compiler Gpusim Ir List Models Option Runtime Symshape
