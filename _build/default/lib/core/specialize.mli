(** Hot-shape specialization (hybrid static/dynamic deployment): static
    variants compiled for hot shape signatures next to the always-valid
    shape-generic artifact. A signature miss falls back to the generic
    artifact — never a recompile stall. *)

type t = {
  built : Models.Common.built;
  generic : Compiler.compiled;
  hot : ((string * int) list * Compiler.compiled) list;
  mutable hits : int;
  mutable misses : int;
}

val default_hot_envs : Models.Common.built -> (string * int) list list
(** Cartesian product of the dims' likely values (capped at 16). *)

val create :
  ?options:Compiler.options ->
  ?hot_envs:(string * int) list list ->
  Models.Common.built ->
  t

val total_compile_ms : t -> float

val serve :
  ?device:Gpusim.Device.t ->
  t ->
  (string * int) list ->
  Runtime.Profile.t * [ `Hot | `Generic ]
