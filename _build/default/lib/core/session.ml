(* Serving-session API: compile a model once, answer requests at
   arbitrary shapes, and keep latency statistics — the deployment
   wrapper a BladeDISC user actually runs behind an endpoint. *)

module Common = Models.Common
module Profile = Runtime.Profile

type t = {
  built : Common.built;
  compiled : Compiler.compiled;
  device : Gpusim.Device.t;
  mutable latencies_us : float list; (* reverse chronological *)
  mutable requests : int;
}

type stats = {
  requests : int;
  compile_ms : float;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  max_us : float;
}

let create ?(options = Compiler.default_options) ?(device = Gpusim.Device.a10)
    (built : Common.built) : t =
  let compiled = Compiler.compile ~options built.Common.graph in
  { built; compiled; device; latencies_us = []; requests = 0 }

let record t lat =
  t.latencies_us <- lat :: t.latencies_us;
  t.requests <- t.requests + 1

(* Cost-only request at named dynamic-dim values. *)
let serve (t : t) (env : (string * int) list) : Profile.t =
  let dims = List.map (fun (n, v) -> (Common.dim_exn t.built n, v)) env in
  let profile = Compiler.simulate ~device:t.device t.compiled dims in
  record t (Profile.total_us profile);
  profile

(* Data-plane request on real tensors. *)
let serve_data (t : t) (inputs : Tensor.Nd.t list) : Tensor.Nd.t list * Profile.t =
  let outs, profile = Compiler.run ~device:t.device t.compiled inputs in
  record t (Profile.total_us profile);
  (outs, profile)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let stats (t : t) : stats =
  let arr = Array.of_list t.latencies_us in
  Array.sort compare arr;
  let total = Array.fold_left ( +. ) 0.0 arr in
  {
    requests = t.requests;
    compile_ms = t.compiled.Compiler.compile_time_ms;
    mean_us = (if t.requests = 0 then 0.0 else total /. float_of_int t.requests);
    p50_us = percentile arr 0.5;
    p95_us = percentile arr 0.95;
    p99_us = percentile arr 0.99;
    max_us = (if Array.length arr = 0 then 0.0 else arr.(Array.length arr - 1));
  }

let stats_to_string (s : stats) =
  Printf.sprintf
    "requests=%d compile=%.1fs mean=%.0fus p50=%.0fus p95=%.0fus p99=%.0fus max=%.0fus"
    s.requests (s.compile_ms /. 1000.0) s.mean_us s.p50_us s.p95_us s.p99_us s.max_us
