(** Reference interpreter: op-by-op evaluation on {!Tensor.Nd.t} using
    the {!Tensor.Ops_ref} semantics. This is the semantic ground truth
    that compiled executables are tested against, and the data plane of
    the op-by-op baseline executors. *)

exception Eval_error of string

val eval_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

val bind_inputs : Graph.t -> Tensor.Nd.t list -> Symshape.Table.binding
(** Bind all parameter shapes, giving concrete values to every input
    symbol. @raise Eval_error on arity mismatch,
    [Symshape.Table.Inconsistent] on contradictory shapes. *)

val eval_inst :
  Graph.t -> Symshape.Table.binding -> (int -> Tensor.Nd.t) -> Graph.inst -> Tensor.Nd.t
(** Evaluate one (non-parameter) instruction given a lookup for its
    argument values. *)

val run : Graph.t -> Tensor.Nd.t list -> Tensor.Nd.t list
(** Evaluate the whole graph on the given parameter values and return
    the outputs. *)
