(* Half-precision inference mode.

   Rewrites every f32 value in a graph to f16 in place: instruction
   dtypes, cast targets and constant payloads. The simulated data plane
   still computes in OCaml floats (as fp16 tensor cores accumulate in
   fp32, the numerics remain a faithful stand-in); what changes is the
   cost: element bytes halve (memory traffic, padding, peak memory) and
   library kernels run at the device's fp16/tensor-core rate. *)

module Dtype = Tensor.Dtype

let to_f16 (g : Graph.t) =
  let converted = ref 0 in
  Graph.iter g (fun i ->
      if i.dtype = Dtype.F32 then begin
        incr converted;
        i.dtype <- Dtype.F16;
        match i.op with
        | Op.Constant nd -> i.op <- Op.Constant (Tensor.Ops_ref.cast Dtype.F16 nd)
        | Op.Cast Dtype.F32 -> i.op <- Op.Cast Dtype.F16
        | _ -> ()
      end);
  !converted
