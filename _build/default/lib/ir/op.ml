type unary =
  | Neg
  | Abs
  | Exp
  | Log
  | Tanh
  | Sqrt
  | Rsqrt
  | Erf
  | Sign
  | Ceil
  | Floor
  | Logistic
  | Not

type binary =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Max
  | Min
  | Rem
  | And
  | Or

type cmp = Tensor.Ops_ref.cmp = Eq | Ne | Lt | Le | Gt | Ge

type reduce_kind = Tensor.Ops_ref.reduce_kind = R_sum | R_prod | R_max | R_min | R_any

type t =
  | Parameter of { index : int; pname : string }
  | Constant of Tensor.Nd.t
  | Iota of { out : Symshape.Sym.shape; dim : int }
  | Unary of unary
  | Binary of binary
  | Compare of cmp
  | Select
  | Cast of Tensor.Dtype.t
  | Broadcast of { dims : int array; out : Symshape.Sym.shape }
  | Reshape of Symshape.Sym.shape
  | Transpose of int array
  | Concat of { axis : int }
  | Slice of { starts : int array; limits : int array; strides : int array }
  | Pad of { low : int array; high : int array; value : float }
  | Reduce of { kind : reduce_kind; dims : int list }
  | Dot
  | Conv2d of { strides : int * int; padding : int * int }
  | Gather
  | Reduce_window of {
      kind : reduce_kind;
      window : int * int;
      strides : int * int;
      padding : int * int;
    }
  | Argmax of { dim : int }

let unary_to_string = function
  | Neg -> "neg"
  | Abs -> "abs"
  | Exp -> "exp"
  | Log -> "log"
  | Tanh -> "tanh"
  | Sqrt -> "sqrt"
  | Rsqrt -> "rsqrt"
  | Erf -> "erf"
  | Sign -> "sign"
  | Ceil -> "ceil"
  | Floor -> "floor"
  | Logistic -> "logistic"
  | Not -> "not"

let binary_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Pow -> "pow"
  | Max -> "max"
  | Min -> "min"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"

let cmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let ints_to_string a = String.concat "," (List.map string_of_int (Array.to_list a))

let to_string = function
  | Parameter { index; pname } -> Printf.sprintf "parameter(%d, %S)" index pname
  | Constant nd -> Printf.sprintf "constant(%s)" (Tensor.Nd.to_string nd)
  | Iota { out; dim } -> Printf.sprintf "iota(%s, dim=%d)" (Symshape.Sym.to_string out) dim
  | Unary u -> unary_to_string u
  | Binary b -> binary_to_string b
  | Compare c -> "compare." ^ cmp_to_string c
  | Select -> "select"
  | Cast d -> "cast." ^ Tensor.Dtype.to_string d
  | Broadcast { dims; out } ->
      Printf.sprintf "broadcast(dims=[%s], out=%s)" (ints_to_string dims)
        (Symshape.Sym.to_string out)
  | Reshape s -> Printf.sprintf "reshape(%s)" (Symshape.Sym.to_string s)
  | Transpose p -> Printf.sprintf "transpose([%s])" (ints_to_string p)
  | Concat { axis } -> Printf.sprintf "concat(axis=%d)" axis
  | Slice { starts; limits; strides } ->
      Printf.sprintf "slice([%s],[%s],[%s])" (ints_to_string starts) (ints_to_string limits)
        (ints_to_string strides)
  | Pad { low; high; value } ->
      Printf.sprintf "pad([%s],[%s],%g)" (ints_to_string low) (ints_to_string high) value
  | Reduce { kind; dims } ->
      let k =
        match kind with
        | R_sum -> "sum"
        | R_prod -> "prod"
        | R_max -> "max"
        | R_min -> "min"
        | R_any -> "any"
      in
      Printf.sprintf "reduce.%s(dims=[%s])" k
        (String.concat "," (List.map string_of_int dims))
  | Dot -> "dot"
  | Conv2d { strides = sh, sw; padding = ph, pw } ->
      Printf.sprintf "conv2d(strides=%d,%d pad=%d,%d)" sh sw ph pw
  | Gather -> "gather"
  | Reduce_window { kind; window = wh, ww; strides = sh, sw; padding = ph, pw } ->
      let k =
        match kind with
        | R_sum -> "sum"
        | R_prod -> "prod"
        | R_max -> "max"
        | R_min -> "min"
        | R_any -> "any"
      in
      Printf.sprintf "pool.%s(window=%d,%d strides=%d,%d pad=%d,%d)" k wh ww sh sw ph pw
  | Argmax { dim } -> Printf.sprintf "argmax(dim=%d)" dim

(* Classification used by the fusion planner (paper §5). *)
type fusion_class =
  | Elementwise (* one output element reads aligned input elements *)
  | Shape_manipulating (* reshape/broadcast/transpose/slice/pad: index remap only *)
  | Reduction
  | Library (* dot/conv: handled by library kernels, never fused *)
  | Opaque (* parameters, constants, gather, concat *)

let fusion_class = function
  | Unary _ | Binary _ | Compare _ | Select | Cast _ -> Elementwise
  | Broadcast _ | Reshape _ | Transpose _ | Slice _ | Pad _ | Iota _ -> Shape_manipulating
  | Reduce _ -> Reduction
  | Dot | Conv2d _ -> Library
  | Parameter _ | Constant _ | Gather | Concat _ | Reduce_window _ | Argmax _ -> Opaque

(* Approximate arithmetic cost per output element, for the device cost
   model. Transcendentals expand to multi-instruction sequences on GPU. *)
let flops_per_element = function
  | Unary (Exp | Log | Tanh | Logistic | Erf) -> 8.
  | Unary (Sqrt | Rsqrt) -> 4.
  | Unary _ -> 1.
  | Binary (Pow | Div | Rem) -> 4.
  | Binary _ -> 1.
  | Compare _ | Select | Cast _ -> 1.
  | Reduce _ -> 1.
  | Reduce_window { window = wh, ww; _ } -> float_of_int (wh * ww)
  | Argmax _ -> 1.
  | _ -> 0.
