(** Graph-level optimization passes. All rewrites preserve semantics and
    the graph's topological id order (verified by tests).

    The headline dynamic-shape rewrite lives in {!simplify}: a broadcast
    or reshape whose operand {e provably} already has the target shape —
    provable only through the symbolic constraint table — collapses to a
    no-op. A value-based compiler cannot perform it. *)

type stats = {
  mutable simplified : int;
  mutable cse_removed : int;
  mutable dce_removed : int;
}

val empty_stats : unit -> stats
val stats_to_string : stats -> string

val dce : ?stats:stats -> Graph.t -> stats
(** Remove instructions unreachable from the outputs (parameters are
    always kept). *)

val cse : ?stats:stats -> Graph.t -> stats
(** Deduplicate structurally identical instructions (run {!dce} after to
    delete the husks). *)

val simplify : ?stats:stats -> Graph.t -> stats
(** Algebraic identities (x+0, x·1, …), cast/transpose/slice/pad
    identities, transpose and broadcast composition, reshape-chain
    collapsing, and the shape-constraint-driven broadcast/reshape
    elimination. Iterates to a bounded fixpoint. *)

val fold_constants : ?stats:stats -> ?max_elements:int -> Graph.t -> stats
(** Evaluate constant subgraphs with static shapes into literal
    constants (bounded by [max_elements] per result). *)

val run_all : Graph.t -> stats
(** The canonical cleanup pipeline run before fusion:
    fold_constants; simplify; cse; dce. *)
