(** Parser for the textual graph dialect emitted by
    [Printer.to_string ~with_symbols:true] — round-trips programs and
    lets users hand-write graphs for [discc compile-file].

    On reconstruction, shapes are re-inferred instruction by
    instruction; textual shape annotations are merged with the inferred
    shapes (attaching the text's symbol names to real symbols) and
    conflicts are rejected. Constants truncated by the printer (more
    than 16 elements) cannot round-trip and fail with a clear error. *)

exception Parse_error of string

val parse : string -> Graph.t
(** @raise Parse_error on malformed input, [Graph.Type_error] if the
    reconstructed program fails verification. *)
