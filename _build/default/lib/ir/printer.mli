(** Textual form of graphs: one instruction per line,
    [%id : dtype\[shape\] = op(attrs)(args)]. With [~with_symbols], the
    header also lists the root symbols' distribution constraints
    ([sym s0 lb=1 ub=512 likely=64,128]) so that {!Parser.parse} can
    round-trip the full program. *)

val inst_to_string : Graph.inst -> string

val symbol_headers : Graph.t -> string

val to_string : ?with_symbols:bool -> Graph.t -> string

val pp : Format.formatter -> Graph.t -> unit
