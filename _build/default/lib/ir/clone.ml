(* Graph cloning with optional dimension binding.

   [clone ~bind g] rebuilds [g] into a fresh graph (fresh symbol table),
   substituting the given symbolic dims with static values. With all
   dynamic dims bound the result is a fully static program — the basis
   of hot-shape specialization (compile a static variant for a likely
   shape next to the shape-generic artifact).

   Reconstruction goes through Graph.add, so the clone's shapes and
   constraints are re-inferred from scratch; unbound symbols are
   re-created with their range/likely metadata copied. *)

module Sym = Symshape.Sym
module Table = Symshape.Table

let clone ?(bind : (Sym.dim * int) list = []) (g : Graph.t) : Graph.t =
  let old_tab = Graph.symtab g in
  let g' = Graph.create () in
  let new_tab = Graph.symtab g' in
  (* resolve the binding to root ids once *)
  let bound : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (d, v) ->
      match Table.resolve old_tab d with
      | Sym.Sym root -> Hashtbl.replace bound root v
      | Sym.Static v' ->
          if v <> v' then
            invalid_arg (Printf.sprintf "clone: binding static dim %d to %d" v' v))
    bind;
  let sym_map : (int, Sym.dim) Hashtbl.t = Hashtbl.create 16 in
  let subst_dim (d : Sym.dim) : Sym.dim =
    match Table.resolve old_tab d with
    | Sym.Static v -> Sym.Static v
    | Sym.Sym root -> (
        match Hashtbl.find_opt bound root with
        | Some v -> Sym.Static v
        | None -> (
            match Hashtbl.find_opt sym_map root with
            | Some nd -> nd
            | None ->
                let lb = Table.lower_bound old_tab (Sym.Sym root) in
                let ub = Table.upper_bound old_tab (Sym.Sym root) in
                let likely = Table.likely_values old_tab (Sym.Sym root) in
                let nd = Table.fresh ~lb ?ub ~likely new_tab in
                Hashtbl.add sym_map root nd;
                nd))
  in
  let subst_shape (s : Sym.shape) : Sym.shape = Array.map subst_dim s in
  let subst_op (op : Op.t) : Op.t =
    match op with
    | Op.Iota { out; dim } -> Op.Iota { out = subst_shape out; dim }
    | Op.Broadcast { dims; out } -> Op.Broadcast { dims; out = subst_shape out }
    | Op.Reshape out -> Op.Reshape (subst_shape out)
    | other -> other
  in
  let id_map : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Graph.iter g (fun i ->
      let new_id =
        match i.Graph.op with
        | Op.Parameter { pname; _ } ->
            Graph.parameter g' ~name:pname (subst_shape i.Graph.shape) i.Graph.dtype
        | op ->
            Graph.add g' (subst_op op)
              (List.map (Hashtbl.find id_map) (Array.to_list i.Graph.args))
      in
      Hashtbl.replace id_map i.Graph.id new_id);
  Graph.set_outputs g' (List.map (Hashtbl.find id_map) (Graph.outputs g));
  g'
