(* Parser for the textual graph form emitted by Printer.to_string
   ~with_symbols:true — a small, hand-writable IR dialect:

     graph {
       sym s0 lb=1 ub=512 likely=64,128
       %0 : f32[s0x8] = parameter(0, "x")()
       %1 : f32[] = constant(f32[]{0.5})()
       %2 : f32[s0x8] = mul(%0, %1)
       return %2
     }

   Shapes are re-inferred on reconstruction (Graph.add), so a parsed
   program gets fresh, consistent shape constraints; the annotations in
   the text are checked against the inferred ranks. Constants larger
   than the printer's truncation limit cannot round-trip and are
   rejected with a clear error. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Dtype = Tensor.Dtype
module Nd = Tensor.Nd

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* --- tokenizer ----------------------------------------------------------- *)

type token =
  | Ident of string (* graph, sym, add, s0, dims, f32, ... *)
  | Value of int (* %7 *)
  | Num of float (* 1, -2.5, 1e-3 *)
  | Str of string (* "x" *)
  | Punct of char (* ( ) [ ] { } , : = *)

let token_to_string = function
  | Ident s -> s
  | Value n -> "%" ^ string_of_int n
  | Num f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "%S" s
  | Punct c -> String.make 1 c

let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let peek () = if !i < n then Some src.[!i] else None in
  let is_ident c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '.' in
  let is_num_start c = (c >= '0' && c <= '9') || c = '-' in
  while !i < n do
    match src.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '%' ->
        incr i;
        let start = !i in
        while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
          incr i
        done;
        if !i = start then fail "bad value reference at offset %d" start;
        toks := Value (int_of_string (String.sub src start (!i - start))) :: !toks
    | '"' ->
        incr i;
        let start = !i in
        while (match peek () with Some '"' -> false | Some _ -> true | None -> false) do
          incr i
        done;
        if peek () = None then fail "unterminated string";
        toks := Str (String.sub src start (!i - start)) :: !toks;
        incr i
    | ('(' | ')' | '[' | ']' | '{' | '}' | ',' | ':' | '=') as c ->
        incr i;
        toks := Punct c :: !toks
    | c when is_num_start c ->
        let start = !i in
        incr i;
        while
          match peek () with
          | Some c when (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' -> true
          | Some ('+' | '-') when !i > start && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E') ->
              true
          | _ -> false
        do
          incr i
        done;
        toks := Num (float_of_string (String.sub src start (!i - start))) :: !toks
    | c when is_ident c ->
        let start = !i in
        while (match peek () with Some c when is_ident c -> true | _ -> false) do
          incr i
        done;
        let word = String.sub src start (!i - start) in
        if word = "x" then toks := Ident "x" :: !toks else toks := Ident word :: !toks
    | c -> fail "unexpected character %C at offset %d" c !i
  done;
  List.rev !toks

(* --- parser state --------------------------------------------------------- *)

type state = {
  mutable toks : token list;
  g : Graph.t;
  syms : (string, Sym.dim) Hashtbl.t; (* "s0" -> fresh symbol *)
  ids : (int, int) Hashtbl.t; (* textual %id -> rebuilt id *)
}

let next st =
  match st.toks with
  | [] -> fail "unexpected end of input"
  | t :: rest ->
      st.toks <- rest;
      t

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let expect st tok =
  let t = next st in
  if t <> tok then fail "expected %s, got %s" (token_to_string tok) (token_to_string t)

let expect_ident st =
  match next st with Ident s -> s | t -> fail "expected identifier, got %s" (token_to_string t)

let expect_num st =
  match next st with
  | Num f -> f
  | t -> fail "expected number, got %s" (token_to_string t)

let expect_int st = int_of_float (expect_num st)

let expect_value st =
  match next st with Value v -> v | t -> fail "expected %%id, got %s" (token_to_string t)

let lookup_value st v =
  match Hashtbl.find_opt st.ids v with
  | Some id -> id
  | None -> fail "use of undefined value %%%d" v

(* s0 / s12 names *)
let is_sym_name s =
  String.length s >= 2 && s.[0] = 's'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 (String.length s - 1))

let sym_dim st name =
  match Hashtbl.find_opt st.syms name with
  | Some d -> d
  | None ->
      let d = Table.fresh ~name (Graph.symtab st.g) in
      Hashtbl.add st.syms name d;
      d

(* shape: "[" dims-separated-by-x "]" where a dim is an int or sN; the
   tokenizer splits "s0x4" into Ident "s0x4"? No: 'x' is an ident char,
   so "s0x4x8" arrives as one identifier — split it here. *)
let parse_shape_ident st (s : string) : Sym.shape =
  if s = "" then [||]
  else
    String.split_on_char 'x' s
    |> List.map (fun part ->
           if part = "" then fail "empty dim in shape %S" s
           else if is_sym_name part then sym_dim st part
           else
             match int_of_string_opt part with
             | Some v -> Sym.Static v
             | None -> fail "bad dimension %S" part)
    |> Array.of_list

let parse_shape st : Sym.shape =
  expect st (Punct '[');
  match peek st with
  | Some (Punct ']') ->
      ignore (next st);
      [||]
  | Some (Ident s) ->
      ignore (next st);
      let shape = parse_shape_ident st s in
      expect st (Punct ']');
      shape
  | Some (Num _) ->
      (* pure numeric leading dim like [2x3] tokenizes as Num 2, Ident "x3"... *)
      let buf = Buffer.create 16 in
      let rec slurp () =
        match peek st with
        | Some (Punct ']') -> ignore (next st)
        | Some (Num f) ->
            ignore (next st);
            Buffer.add_string buf (string_of_int (int_of_float f));
            slurp ()
        | Some (Ident s) ->
            ignore (next st);
            Buffer.add_string buf s;
            slurp ()
        | t -> fail "bad shape token %s" (match t with Some t -> token_to_string t | None -> "EOF")
      in
      slurp ();
      parse_shape_ident st (Buffer.contents buf)
  | t -> fail "bad shape start %s" (match t with Some t -> token_to_string t | None -> "EOF")

let parse_dtype_name s =
  match Dtype.of_string s with Some d -> d | None -> fail "unknown dtype %S" s

(* int list in brackets: "[" comma-separated ints "]" (empty allowed) *)
let parse_int_list st =
  expect st (Punct '[');
  let rec go acc =
    match peek st with
    | Some (Punct ']') ->
        ignore (next st);
        List.rev acc
    | Some (Punct ',') ->
        ignore (next st);
        go acc
    | Some (Num _) -> go (expect_int st :: acc)
    | t -> fail "bad int list token %s" (match t with Some t -> token_to_string t | None -> "EOF")
  in
  go []

(* constant payload: dtype shape "{" values "}" *)
let parse_constant st =
  let dt = parse_dtype_name (expect_ident st) in
  let shape_sym = parse_shape st in
  let shape = Sym.concrete_exn shape_sym in
  expect st (Punct '{');
  let rec go acc =
    match peek st with
    | Some (Punct '}') ->
        ignore (next st);
        List.rev acc
    | Some (Punct ',') ->
        ignore (next st);
        go acc
    | Some (Num _) -> go (expect_num st :: acc)
    | Some (Ident "...") | Some (Ident _) ->
        fail "constant was truncated by the printer and cannot round-trip"
    | t -> fail "bad constant token %s" (match t with Some t -> token_to_string t | None -> "EOF")
  in
  let values = go [] in
  if List.length values <> Tensor.Shape.numel shape then
    fail "constant has %d values for shape %s" (List.length values)
      (Tensor.Shape.to_string shape);
  Nd.of_array ~dtype:dt shape (Array.of_list values)

(* argument list: "(" comma-separated %ids ")" *)
let parse_args st =
  expect st (Punct '(');
  let rec go acc =
    match peek st with
    | Some (Punct ')') ->
        ignore (next st);
        List.rev acc
    | Some (Punct ',') ->
        ignore (next st);
        go acc
    | Some (Value _) -> go (lookup_value st (expect_value st) :: acc)
    | t -> fail "bad argument %s" (match t with Some t -> token_to_string t | None -> "EOF")
  in
  go []

let unary_by_name =
  [
    ("neg", Op.Neg); ("abs", Op.Abs); ("exp", Op.Exp); ("log", Op.Log); ("tanh", Op.Tanh);
    ("sqrt", Op.Sqrt); ("rsqrt", Op.Rsqrt); ("erf", Op.Erf); ("sign", Op.Sign);
    ("ceil", Op.Ceil); ("floor", Op.Floor); ("logistic", Op.Logistic); ("not", Op.Not);
  ]

let binary_by_name =
  [
    ("add", Op.Add); ("sub", Op.Sub); ("mul", Op.Mul); ("div", Op.Div); ("pow", Op.Pow);
    ("max", Op.Max); ("min", Op.Min); ("rem", Op.Rem); ("and", Op.And); ("or", Op.Or);
  ]

let cmp_by_name =
  [ ("eq", Op.Eq); ("ne", Op.Ne); ("lt", Op.Lt); ("le", Op.Le); ("gt", Op.Gt); ("ge", Op.Ge) ]

let reduce_by_name =
  [ ("sum", Op.R_sum); ("prod", Op.R_prod); ("max", Op.R_max); ("min", Op.R_min); ("any", Op.R_any) ]

(* one instruction line: %N : dtype shape = op...(args) *)
let parse_inst st =
  let text_id = expect_value st in
  expect st (Punct ':');
  let _dt = parse_dtype_name (expect_ident st) in
  let declared_shape = parse_shape st in
  expect st (Punct '=');
  let opword = expect_ident st in
  let name, suffix =
    match String.index_opt opword '.' with
    | Some k ->
        (String.sub opword 0 k, Some (String.sub opword (k + 1) (String.length opword - k - 1)))
    | None -> (opword, None)
  in
  let new_id =
    match name with
    | "parameter" ->
        expect st (Punct '(');
        let _index = expect_int st in
        expect st (Punct ',');
        let pname = match next st with Str s -> s | t -> fail "expected name, got %s" (token_to_string t) in
        expect st (Punct ')');
        expect st (Punct '(');
        expect st (Punct ')');
        Graph.parameter st.g ~name:pname declared_shape _dt
    | "constant" ->
        expect st (Punct '(');
        let nd = parse_constant st in
        expect st (Punct ')');
        expect st (Punct '(');
        expect st (Punct ')');
        Graph.add st.g (Op.Constant nd) []
    | "iota" ->
        expect st (Punct '(');
        let out = parse_shape st in
        expect st (Punct ',');
        (match expect_ident st with "dim" -> () | w -> fail "expected dim=, got %s" w);
        expect st (Punct '=');
        let dim = expect_int st in
        expect st (Punct ')');
        expect st (Punct '(');
        expect st (Punct ')');
        Graph.add st.g (Op.Iota { out; dim }) []
    | "compare" -> (
        match suffix with
        | Some c -> (
            match List.assoc_opt c cmp_by_name with
            | Some cmp -> Graph.add st.g (Op.Compare cmp) (parse_args st)
            | None -> fail "unknown comparison %S" c)
        | None -> fail "compare needs a .kind suffix")
    | "cast" -> (
        match suffix with
        | Some d -> Graph.add st.g (Op.Cast (parse_dtype_name d)) (parse_args st)
        | None -> fail "cast needs a .dtype suffix")
    | "select" -> Graph.add st.g Op.Select (parse_args st)
    | "broadcast" ->
        expect st (Punct '(');
        (match expect_ident st with "dims" -> () | w -> fail "expected dims=, got %s" w);
        expect st (Punct '=');
        let dims = Array.of_list (parse_int_list st) in
        expect st (Punct ',');
        (match expect_ident st with "out" -> () | w -> fail "expected out=, got %s" w);
        expect st (Punct '=');
        let out = parse_shape st in
        expect st (Punct ')');
        Graph.add st.g (Op.Broadcast { dims; out }) (parse_args st)
    | "reshape" ->
        expect st (Punct '(');
        let out = parse_shape st in
        expect st (Punct ')');
        Graph.add st.g (Op.Reshape out) (parse_args st)
    | "transpose" ->
        expect st (Punct '(');
        let perm = Array.of_list (parse_int_list st) in
        expect st (Punct ')');
        Graph.add st.g (Op.Transpose perm) (parse_args st)
    | "concat" ->
        expect st (Punct '(');
        (match expect_ident st with "axis" -> () | w -> fail "expected axis=, got %s" w);
        expect st (Punct '=');
        let axis = expect_int st in
        expect st (Punct ')');
        Graph.add st.g (Op.Concat { axis }) (parse_args st)
    | "slice" ->
        expect st (Punct '(');
        let starts = Array.of_list (parse_int_list st) in
        expect st (Punct ',');
        let limits = Array.of_list (parse_int_list st) in
        expect st (Punct ',');
        let strides = Array.of_list (parse_int_list st) in
        expect st (Punct ')');
        Graph.add st.g (Op.Slice { starts; limits; strides }) (parse_args st)
    | "pad" ->
        expect st (Punct '(');
        let low = Array.of_list (parse_int_list st) in
        expect st (Punct ',');
        let high = Array.of_list (parse_int_list st) in
        expect st (Punct ',');
        let value = expect_num st in
        expect st (Punct ')');
        Graph.add st.g (Op.Pad { low; high; value }) (parse_args st)
    | "reduce" -> (
        match suffix with
        | Some k -> (
            match List.assoc_opt k reduce_by_name with
            | Some kind ->
                expect st (Punct '(');
                (match expect_ident st with "dims" -> () | w -> fail "expected dims=, got %s" w);
                expect st (Punct '=');
                let dims = parse_int_list st in
                expect st (Punct ')');
                Graph.add st.g (Op.Reduce { kind; dims }) (parse_args st)
            | None -> fail "unknown reduce kind %S" k)
        | None -> fail "reduce needs a .kind suffix")
    | "dot" -> Graph.add st.g Op.Dot (parse_args st)
    | "conv2d" ->
        expect st (Punct '(');
        (match expect_ident st with "strides" -> () | w -> fail "expected strides=, got %s" w);
        expect st (Punct '=');
        let sh = expect_int st in
        expect st (Punct ',');
        let sw = expect_int st in
        (match expect_ident st with "pad" -> () | w -> fail "expected pad=, got %s" w);
        expect st (Punct '=');
        let ph = expect_int st in
        expect st (Punct ',');
        let pw = expect_int st in
        expect st (Punct ')');
        Graph.add st.g (Op.Conv2d { strides = (sh, sw); padding = (ph, pw) }) (parse_args st)
    | "gather" -> Graph.add st.g Op.Gather (parse_args st)
    | "pool" -> (
        match suffix with
        | Some k -> (
            match List.assoc_opt k reduce_by_name with
            | Some kind ->
                expect st (Punct '(');
                (match expect_ident st with "window" -> () | w -> fail "expected window=, got %s" w);
                expect st (Punct '=');
                let wh = expect_int st in
                expect st (Punct ',');
                let ww = expect_int st in
                (match expect_ident st with "strides" -> () | w -> fail "expected strides=, got %s" w);
                expect st (Punct '=');
                let sh = expect_int st in
                expect st (Punct ',');
                let sw = expect_int st in
                (match expect_ident st with "pad" -> () | w -> fail "expected pad=, got %s" w);
                expect st (Punct '=');
                let ph = expect_int st in
                expect st (Punct ',');
                let pw = expect_int st in
                expect st (Punct ')');
                Graph.add st.g
                  (Op.Reduce_window
                     { kind; window = (wh, ww); strides = (sh, sw); padding = (ph, pw) })
                  (parse_args st)
            | None -> fail "unknown pool kind %S" k)
        | None -> fail "pool needs a .kind suffix")
    | "argmax" ->
        expect st (Punct '(');
        (match expect_ident st with "dim" -> () | w -> fail "expected dim=, got %s" w);
        expect st (Punct '=');
        let dim = expect_int st in
        expect st (Punct ')');
        Graph.add st.g (Op.Argmax { dim }) (parse_args st)
    | bare -> (
        match List.assoc_opt bare unary_by_name with
        | Some u -> Graph.add st.g (Op.Unary u) (parse_args st)
        | None -> (
            match List.assoc_opt bare binary_by_name with
            | Some b -> Graph.add st.g (Op.Binary b) (parse_args st)
            | None -> fail "unknown operation %S" bare))
  in
  (* reconcile the declared shape with inference: merge dim-by-dim so
     hand-written symbol names attach to the inferred symbols *)
  let inferred = (Graph.inst st.g new_id).Graph.shape in
  if Sym.rank declared_shape <> Sym.rank inferred then
    fail "%%%d: declared rank %d but inferred %d" text_id (Sym.rank declared_shape)
      (Sym.rank inferred);
  (try Array.iter2 (Table.merge (Graph.symtab st.g)) declared_shape inferred
   with Table.Inconsistent msg -> fail "%%%d: shape annotation conflict (%s)" text_id msg);
  (* normalize the stored shape to the declared (now merged) symbols so
     that printing the parsed graph reproduces the input text *)
  (Graph.inst st.g new_id).Graph.shape <-
    Array.map (Table.resolve (Graph.symtab st.g)) declared_shape;
  Hashtbl.replace st.ids text_id new_id

let parse_sym_header st =
  let name = expect_ident st in
  if not (is_sym_name name) then fail "bad symbol name %S" name;
  let d = sym_dim st name in
  let tab = Graph.symtab st.g in
  let rec attrs () =
    match peek st with
    | Some (Ident ("lb" | "ub" | "likely")) -> (
        let key = expect_ident st in
        expect st (Punct '=');
        match key with
        | "lb" ->
            Table.set_range tab d ~lb:(expect_int st) ();
            attrs ()
        | "ub" ->
            Table.set_range tab d ~ub:(expect_int st) ();
            attrs ()
        | _ ->
            let rec vals acc =
              let v = expect_int st in
              match peek st with
              | Some (Punct ',') ->
                  ignore (next st);
                  vals (v :: acc)
              | _ -> List.rev (v :: acc)
            in
            Table.add_likely tab d (vals []);
            attrs ())
    | _ -> ()
  in
  attrs ()

let parse (src : string) : Graph.t =
  let st = { toks = tokenize src; g = Graph.create (); syms = Hashtbl.create 8; ids = Hashtbl.create 32 } in
  (match next st with Ident "graph" -> () | t -> fail "expected 'graph', got %s" (token_to_string t));
  expect st (Punct '{');
  let rec lines () =
    match peek st with
    | Some (Ident "sym") ->
        ignore (next st);
        parse_sym_header st;
        lines ()
    | Some (Value _) ->
        parse_inst st;
        lines ()
    | Some (Ident "return") ->
        ignore (next st);
        let rec outs acc =
          let v = lookup_value st (expect_value st) in
          match peek st with
          | Some (Punct ',') ->
              ignore (next st);
              outs (v :: acc)
          | _ -> List.rev (v :: acc)
        in
        Graph.set_outputs st.g (outs [])
    | t -> fail "unexpected %s" (match t with Some t -> token_to_string t | None -> "EOF")
  in
  lines ();
  expect st (Punct '}');
  Graph.verify st.g;
  st.g
