(** SSA tensor-program graphs over symbolic shapes.

    A graph owns a {!Symshape.Table.t}; constructing instructions through
    {!add} runs shape/dtype inference, which both computes the symbolic
    result shape and {e records} the constraints the op semantics imply
    (dim merges for elementwise ops, product equalities for reshapes,
    derived dims for conv/pad/concat). This constructor-time propagation
    is the paper's "shape information propagation".

    Instruction ids are issued in increasing order and arguments always
    reference smaller ids, so id order is a topological order. Rewrites
    preserve this invariant by only (a) mutating an instruction in place
    or (b) redirecting uses to an {e earlier} instruction. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Dtype = Tensor.Dtype

exception Type_error of string

type inst = {
  id : int;
  mutable op : Op.t;
  mutable args : int array;
  mutable shape : Sym.shape;
  mutable dtype : Dtype.t;
}

type t

val create : unit -> t
val symtab : t -> Table.t

val inst : t -> int -> inst
(** @raise Type_error for unknown or removed ids. *)

val inst_opt : t -> int -> inst option

val iter : t -> (inst -> unit) -> unit
(** Visit live instructions in topological (id) order. *)

val fold : t -> ('a -> inst -> 'a) -> 'a -> 'a
val live_insts : t -> inst list
val num_insts : t -> int

val outputs : t -> int list
val set_outputs : t -> int list -> unit
val parameters : t -> (int * string) list
(** [(inst id, name)] in parameter-index order. *)

val parameter : t -> name:string -> Sym.shape -> Dtype.t -> int

val add : t -> Op.t -> int list -> int
(** Append an instruction; infers its shape/dtype and records implied
    shape constraints. @raise Type_error on ill-typed construction. *)

val infer : t -> Op.t -> inst list -> Sym.shape * Dtype.t
(** The inference relation itself (exposed for the verifier and tests). *)

val users : t -> int -> int list

val use_counts : t -> int array
(** Per-id use count; graph outputs count as one use. *)

val replace_uses : t -> old_id:int -> new_id:int -> unit
(** Redirect all uses (including outputs) of [old_id] to [new_id]. *)

val remove : t -> int -> unit
(** Delete a dead instruction. @raise Type_error on parameters/outputs. *)

val verify : t -> unit
(** Structural + type checking of the whole graph.
    @raise Type_error on the first violation. *)
