lib/ir/passes.ml: Array Graph Hashtbl Interp List Op Option Printf Symshape Tensor
