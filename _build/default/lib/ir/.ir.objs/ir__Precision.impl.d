lib/ir/precision.ml: Graph Op Tensor
