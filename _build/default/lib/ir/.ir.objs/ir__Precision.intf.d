lib/ir/precision.mli: Graph
