lib/ir/op.mli: Symshape Tensor
