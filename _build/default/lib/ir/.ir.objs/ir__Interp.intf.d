lib/ir/interp.mli: Format Graph Symshape Tensor
