lib/ir/parser.ml: Array Buffer Format Graph Hashtbl List Op Printf String Symshape Tensor
