lib/ir/graph.mli: Op Symshape Tensor
