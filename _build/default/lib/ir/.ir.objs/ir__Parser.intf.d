lib/ir/parser.mli: Graph
