lib/ir/graph.ml: Array Format List Op Option Symshape Tensor
