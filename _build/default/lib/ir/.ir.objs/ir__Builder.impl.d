lib/ir/builder.ml: Array Float Graph Op Symshape Tensor
