lib/ir/passes.mli: Graph
