lib/ir/interp.ml: Array Format Graph Hashtbl List Op Symshape Tensor
