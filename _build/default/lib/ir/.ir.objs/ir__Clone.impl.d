lib/ir/clone.ml: Array Graph Hashtbl List Op Printf Symshape
