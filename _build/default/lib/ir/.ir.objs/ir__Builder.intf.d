lib/ir/builder.mli: Graph Op Symshape Tensor
