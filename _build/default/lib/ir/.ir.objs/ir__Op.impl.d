lib/ir/op.ml: Array List Printf String Symshape Tensor
