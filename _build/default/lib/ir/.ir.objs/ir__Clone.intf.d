lib/ir/clone.mli: Graph Symshape
