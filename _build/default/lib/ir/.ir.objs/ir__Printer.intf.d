lib/ir/printer.mli: Format Graph
