(** Half-precision inference mode: convert a graph's f32 values to f16
    in place (mixed-precision deployment, as BladeDISC supports).

    Numerics on the simulated data plane are unchanged (fp16 tensor
    cores accumulate in fp32); the cost model sees halved element bytes
    and the device's fp16 throughput for library kernels. *)

val to_f16 : Graph.t -> int
(** Returns the number of converted instructions. *)
