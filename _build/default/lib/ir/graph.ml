module Sym = Symshape.Sym
module Table = Symshape.Table
module Dtype = Tensor.Dtype

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type inst = {
  id : int;
  mutable op : Op.t;
  mutable args : int array;
  mutable shape : Sym.shape;
  mutable dtype : Dtype.t;
}

type t = {
  mutable insts : inst option array;
  mutable next_id : int;
  symtab : Table.t;
  mutable outputs : int list;
  mutable params : (int * string) list; (* inst id, name; reverse order *)
}

let create () =
  { insts = Array.make 64 None; next_id = 0; symtab = Table.create (); outputs = []; params = [] }

let symtab g = g.symtab

let inst g id =
  if id < 0 || id >= g.next_id then type_error "unknown value %%%d" id;
  match g.insts.(id) with
  | Some i -> i
  | None -> type_error "value %%%d was removed" id

let inst_opt g id = if id < 0 || id >= g.next_id then None else g.insts.(id)

let iter g f =
  for id = 0 to g.next_id - 1 do
    match g.insts.(id) with Some i -> f i | None -> ()
  done

let fold g f acc =
  let acc = ref acc in
  iter g (fun i -> acc := f !acc i);
  !acc

let live_insts g = List.rev (fold g (fun acc i -> i :: acc) [])

let num_insts g = fold g (fun n _ -> n + 1) 0

let outputs g = g.outputs

let set_outputs g ids =
  List.iter (fun id -> ignore (inst g id)) ids;
  g.outputs <- ids

let parameters g = List.rev g.params

(* --- Shape & dtype inference (records constraints as a side effect) --- *)

let check_floating name dt =
  if not (Dtype.is_floating dt) then type_error "%s requires a floating dtype, got %s" name (Dtype.to_string dt)

(* Merge corresponding dims of two shapes; rank-0 scalars pass through. *)
let merge_elementwise tab name (a : Sym.shape) (b : Sym.shape) : Sym.shape =
  if Sym.rank a = 0 then b
  else if Sym.rank b = 0 then a
  else if Sym.rank a <> Sym.rank b then
    type_error "%s: rank mismatch %s vs %s" name (Sym.to_string a) (Sym.to_string b)
  else begin
    (try Array.iter2 (Table.merge tab) a b
     with Table.Inconsistent msg ->
       type_error "%s: incompatible shapes %s vs %s (%s)" name (Sym.to_string a)
         (Sym.to_string b) msg);
    Array.map (Table.resolve tab) a
  end

let infer g (op : Op.t) (args : inst list) : Sym.shape * Dtype.t =
  let tab = g.symtab in
  let nargs = List.length args in
  let expect n =
    if nargs <> n then type_error "%s expects %d operands, got %d" (Op.to_string op) n nargs
  in
  let arg i = List.nth args i in
  match op with
  | Op.Parameter _ -> type_error "parameters are created via Graph.parameter"
  | Op.Constant nd ->
      expect 0;
      (Sym.of_concrete (Tensor.Nd.shape nd), Tensor.Nd.dtype nd)
  | Op.Iota { out; dim } ->
      expect 0;
      if dim < 0 || dim >= Sym.rank out then type_error "iota: dim out of range";
      (out, Dtype.F32)
  | Op.Unary u ->
      expect 1;
      let a = arg 0 in
      (match u with
      | Op.Exp | Op.Log | Op.Tanh | Op.Sqrt | Op.Rsqrt | Op.Erf | Op.Logistic ->
          check_floating (Op.unary_to_string u) a.dtype
      | Op.Not ->
          if a.dtype <> Dtype.Bool then type_error "not requires bool"
      | _ -> ());
      (a.shape, a.dtype)
  | Op.Binary b ->
      expect 2;
      let x = arg 0 and y = arg 1 in
      if x.dtype <> y.dtype then
        type_error "%s: dtype mismatch %s vs %s" (Op.binary_to_string b)
          (Dtype.to_string x.dtype) (Dtype.to_string y.dtype);
      (match b with
      | Op.And | Op.Or -> if x.dtype <> Dtype.Bool then type_error "and/or require bool"
      | _ -> ());
      (merge_elementwise tab (Op.binary_to_string b) x.shape y.shape, x.dtype)
  | Op.Compare c ->
      expect 2;
      let x = arg 0 and y = arg 1 in
      if x.dtype <> y.dtype then type_error "compare: dtype mismatch";
      (merge_elementwise tab (Op.cmp_to_string c) x.shape y.shape, Dtype.Bool)
  | Op.Select ->
      expect 3;
      let p = arg 0 and t = arg 1 and f = arg 2 in
      if p.dtype <> Dtype.Bool then type_error "select: predicate must be bool";
      if t.dtype <> f.dtype then type_error "select: branch dtype mismatch";
      let s = merge_elementwise tab "select" t.shape f.shape in
      let s = merge_elementwise tab "select" s p.shape in
      (s, t.dtype)
  | Op.Cast d ->
      expect 1;
      ((arg 0).shape, d)
  | Op.Broadcast { dims; out } ->
      expect 1;
      let a = arg 0 in
      if Array.length dims <> Sym.rank a.shape then
        type_error "broadcast: dims rank mismatch";
      Array.iteri
        (fun i d ->
          if d < 0 || d >= Sym.rank out then type_error "broadcast: dim %d out of range" d;
          match Table.resolve tab a.shape.(i) with
          | Sym.Static 1 -> () (* genuine broadcast along this dim *)
          | din -> (
              try Table.merge tab din out.(d)
              with Table.Inconsistent msg ->
                type_error "broadcast: input dim %d incompatible with output (%s)" i msg))
        dims;
      (Array.map (Table.resolve tab) out, a.dtype)
  | Op.Reshape out ->
      expect 1;
      let a = arg 0 in
      (match (Sym.numel_static a.shape, Sym.numel_static out) with
      | Some x, Some y when x <> y ->
          type_error "reshape: element count %d -> %d" x y
      | _ -> Table.record_product_equal tab a.shape out);
      (Array.map (Table.resolve tab) out, a.dtype)
  | Op.Transpose perm ->
      expect 1;
      let a = arg 0 in
      let r = Sym.rank a.shape in
      if Array.length perm <> r then type_error "transpose: perm rank mismatch";
      let seen = Array.make r false in
      Array.iter
        (fun p ->
          if p < 0 || p >= r || seen.(p) then type_error "transpose: invalid permutation";
          seen.(p) <- true)
        perm;
      (Array.map (fun p -> a.shape.(p)) perm, a.dtype)
  | Op.Concat { axis } -> (
      if nargs = 0 then type_error "concat: no operands";
      let first = arg 0 in
      let r = Sym.rank first.shape in
      if axis < 0 || axis >= r then type_error "concat: axis out of range";
      List.iter
        (fun a ->
          if a.dtype <> first.dtype then type_error "concat: dtype mismatch";
          if Sym.rank a.shape <> r then type_error "concat: rank mismatch";
          Array.iteri
            (fun i d -> if i <> axis then Table.merge tab d first.shape.(i))
            a.shape)
        (List.tl args);
      let axis_dim = Table.fresh_sum tab (List.map (fun a -> a.shape.(axis)) args) in
      let out =
        Array.mapi
          (fun i d -> if i = axis then axis_dim else Table.resolve tab d)
          first.shape
      in
      (out, first.dtype))
  | Op.Slice { starts; limits; strides } ->
      expect 1;
      let a = arg 0 in
      let r = Sym.rank a.shape in
      if Array.length starts <> r || Array.length limits <> r || Array.length strides <> r
      then type_error "slice: rank mismatch";
      let out =
        Array.init r (fun i ->
            match Table.resolve tab a.shape.(i) with
            | Sym.Static d ->
                let lim = if limits.(i) = -1 then d else limits.(i) in
                if starts.(i) < 0 || lim > d || lim < starts.(i) || strides.(i) < 1 then
                  type_error "slice: bad bounds on dim %d" i;
                Sym.Static ((lim - starts.(i) + strides.(i) - 1) / strides.(i))
            | dyn ->
                if starts.(i) = 0 && strides.(i) = 1 && limits.(i) = -1 then dyn
                else if
                  (* a static sub-range provably inside the dim *)
                  limits.(i) >= 0
                  && starts.(i) >= 0
                  && strides.(i) >= 1
                  && limits.(i) > starts.(i)
                  && limits.(i) <= Table.lower_bound tab dyn
                then Sym.Static ((limits.(i) - starts.(i) + strides.(i) - 1) / strides.(i))
                else
                  type_error
                    "slice: dim %d is dynamic; need full range or a static range within \
                     the lower bound"
                    i)
      in
      (out, a.dtype)
  | Op.Pad { low; high; value = _ } ->
      expect 1;
      let a = arg 0 in
      let r = Sym.rank a.shape in
      if Array.length low <> r || Array.length high <> r then type_error "pad: rank mismatch";
      let out =
        Array.init r (fun i ->
            if low.(i) < 0 || high.(i) < 0 then type_error "pad: negative padding";
            if low.(i) = 0 && high.(i) = 0 then Table.resolve tab a.shape.(i)
            else
              Table.fresh_affine tab ~base:a.shape.(i) ~add:(low.(i) + high.(i)) ~div:1
                ~mul:1 ~post:0)
      in
      (out, a.dtype)
  | Op.Reduce { kind; dims } ->
      expect 1;
      let a = arg 0 in
      let r = Sym.rank a.shape in
      List.iter (fun d -> if d < 0 || d >= r then type_error "reduce: dim out of range") dims;
      let out =
        Array.of_list
          (List.filteri (fun i _ -> not (List.mem i dims)) (Array.to_list a.shape))
      in
      let dt = if kind = Op.R_any then Dtype.Bool else a.dtype in
      (out, dt)
  | Op.Dot ->
      expect 2;
      let x = arg 0 and y = arg 1 in
      check_floating "dot" x.dtype;
      let rx = Sym.rank x.shape and ry = Sym.rank y.shape in
      if rx < 2 || ry < 2 then type_error "dot: rank must be >= 2";
      if rx <> ry && ry <> 2 then
        type_error "dot: batch ranks must match (or rhs rank 2), got %d vs %d" rx ry;
      let k_lhs = x.shape.(rx - 1) and k_rhs = y.shape.(ry - 2) in
      (try Table.merge tab k_lhs k_rhs
       with Table.Inconsistent msg -> type_error "dot: contracting dims differ (%s)" msg);
      if rx = ry then
        for i = 0 to rx - 3 do
          try Table.merge tab x.shape.(i) y.shape.(i)
          with Table.Inconsistent msg -> type_error "dot: batch dims differ (%s)" msg
        done;
      let batch = Array.sub x.shape 0 (rx - 2) in
      let out =
        Array.append (Array.map (Table.resolve tab) batch)
          [| Table.resolve tab x.shape.(rx - 2); Table.resolve tab y.shape.(ry - 1) |]
      in
      (out, x.dtype)
  | Op.Conv2d { strides = sh, sw; padding = ph, pw } ->
      expect 2;
      let x = arg 0 and w = arg 1 in
      check_floating "conv2d" x.dtype;
      if Sym.rank x.shape <> 4 || Sym.rank w.shape <> 4 then type_error "conv2d: rank 4 required";
      if not (Sym.shape_is_static w.shape) then type_error "conv2d: filter must be static";
      let kh = Option.get (Sym.static_value w.shape.(0)) in
      let kw = Option.get (Sym.static_value w.shape.(1)) in
      (try Table.merge tab x.shape.(3) w.shape.(2)
       with Table.Inconsistent msg -> type_error "conv2d: channel mismatch (%s)" msg);
      let oh =
        Table.fresh_affine tab ~base:x.shape.(1) ~add:((2 * ph) - kh) ~div:sh ~mul:1 ~post:1
      in
      let ow =
        Table.fresh_affine tab ~base:x.shape.(2) ~add:((2 * pw) - kw) ~div:sw ~mul:1 ~post:1
      in
      ([| Table.resolve tab x.shape.(0); oh; ow; w.shape.(3) |], x.dtype)
  | Op.Reduce_window { kind; window = wh, ww; strides = sh, sw; padding = ph, pw } ->
      expect 1;
      let a = arg 0 in
      if Sym.rank a.shape <> 4 then type_error "reduce_window: rank 4 required";
      if kind = Op.R_any && a.dtype <> Dtype.Bool then
        type_error "reduce_window.any requires bool";
      let oh =
        Table.fresh_affine tab ~base:a.shape.(1) ~add:((2 * ph) - wh) ~div:sh ~mul:1 ~post:1
      in
      let ow =
        Table.fresh_affine tab ~base:a.shape.(2) ~add:((2 * pw) - ww) ~div:sw ~mul:1 ~post:1
      in
      ([| Table.resolve tab a.shape.(0); oh; ow; Table.resolve tab a.shape.(3) |], a.dtype)
  | Op.Argmax { dim } ->
      expect 1;
      let a = arg 0 in
      if dim < 0 || dim >= Sym.rank a.shape then type_error "argmax: dim out of range";
      let out =
        Array.of_list
          (List.filteri (fun i _ -> i <> dim) (Array.to_list a.shape))
      in
      (Array.map (Table.resolve tab) out, Dtype.I32)
  | Op.Gather ->
      expect 2;
      let operand = arg 0 and indices = arg 1 in
      if not (Dtype.is_integer indices.dtype) then type_error "gather: indices must be integer";
      if Sym.rank operand.shape < 1 then type_error "gather: operand rank must be >= 1";
      let tail = Array.sub operand.shape 1 (Sym.rank operand.shape - 1) in
      (Array.append (Array.map (Table.resolve tab) indices.shape)
         (Array.map (Table.resolve tab) tail),
       operand.dtype)

(* --- Construction ------------------------------------------------------ *)

let grow g =
  if g.next_id >= Array.length g.insts then begin
    let bigger = Array.make (2 * Array.length g.insts) None in
    Array.blit g.insts 0 bigger 0 (Array.length g.insts);
    g.insts <- bigger
  end

let append g op args shape dtype =
  grow g;
  let id = g.next_id in
  g.next_id <- id + 1;
  g.insts.(id) <- Some { id; op; args = Array.of_list args; shape; dtype };
  id

let parameter g ~name (shape : Sym.shape) dtype =
  let index = List.length g.params in
  let id = append g (Op.Parameter { index; pname = name }) [] shape dtype in
  g.params <- (id, name) :: g.params;
  id

let add g op arg_ids =
  let args = List.map (inst g) arg_ids in
  let shape, dtype = infer g op args in
  append g op arg_ids shape dtype

(* --- Uses --------------------------------------------------------------- *)

let users g id =
  fold g
    (fun acc i -> if Array.exists (fun a -> a = id) i.args then i.id :: acc else acc)
    []
  |> List.rev

let use_counts g =
  let counts = Array.make g.next_id 0 in
  iter g (fun i -> Array.iter (fun a -> counts.(a) <- counts.(a) + 1) i.args);
  List.iter (fun o -> counts.(o) <- counts.(o) + 1) g.outputs;
  counts

let replace_uses g ~old_id ~new_id =
  if old_id <> new_id then begin
    iter g (fun i ->
        Array.iteri (fun k a -> if a = old_id then i.args.(k) <- new_id) i.args);
    g.outputs <- List.map (fun o -> if o = old_id then new_id else o) g.outputs
  end

let remove g id =
  (match g.insts.(id) with
  | Some i when (match i.op with Op.Parameter _ -> true | _ -> false) ->
      type_error "cannot remove parameter %%%d" id
  | _ -> ());
  if List.mem id g.outputs then type_error "cannot remove output %%%d" id;
  g.insts.(id) <- None

(* --- Verifier ----------------------------------------------------------- *)

let verify g =
  iter g (fun i ->
      Array.iter
        (fun a ->
          if a >= i.id then type_error "%%%d uses forward reference %%%d" i.id a;
          ignore (inst g a))
        i.args;
      match i.op with
      | Op.Parameter _ | Op.Constant _ -> ()
      | _ ->
          let args = List.map (inst g) (Array.to_list i.args) in
          let shape, dtype = infer g i.op args in
          if dtype <> i.dtype then
            type_error "%%%d: recorded dtype %s but inference gives %s" i.id
              (Dtype.to_string i.dtype) (Dtype.to_string dtype);
          if not (Table.equal_shapes g.symtab shape i.shape) then begin
            (* Re-inference may produce fresh symbols for concat/pad/conv
               output dims; accept when ranks agree and static dims match. *)
            if Sym.rank shape <> Sym.rank i.shape then
              type_error "%%%d: shape rank changed under re-inference" i.id
          end);
  List.iter (fun o -> ignore (inst g o)) g.outputs
