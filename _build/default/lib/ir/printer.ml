(* Textual dump of graphs, one instruction per line:
     %id : f32[s0x128] = op(args)  *)

(* Constants are rendered in full (unlike the human-oriented Nd.pp,
   which truncates) so that Parser.parse can round-trip them. *)
let constant_to_string nd =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "constant(%s%s{"
       (Tensor.Dtype.to_string (Tensor.Nd.dtype nd))
       (Tensor.Shape.to_string (Tensor.Nd.shape nd)));
  for k = 0 to Tensor.Nd.numel nd - 1 do
    if k > 0 then Buffer.add_string buf ", ";
    Buffer.add_string buf (Printf.sprintf "%.17g" (Tensor.Nd.get_linear nd k))
  done;
  Buffer.add_string buf "})";
  Buffer.contents buf

let inst_to_string (i : Graph.inst) =
  let args =
    String.concat ", " (List.map (fun a -> "%" ^ string_of_int a) (Array.to_list i.args))
  in
  let op_str =
    match i.op with Op.Constant nd -> constant_to_string nd | op -> Op.to_string op
  in
  Printf.sprintf "%%%d : %s%s = %s(%s)" i.id
    (Tensor.Dtype.to_string i.dtype)
    (Symshape.Sym.to_string i.shape)
    op_str args

(* "sym s0 lb=1 ub=512 likely=64,128" header lines describing the root
   symbols that appear in instruction shapes (so parsed graphs recover
   their distribution constraints). *)
let symbol_headers (g : Graph.t) =
  let tab = Graph.symtab g in
  let seen = Hashtbl.create 8 in
  let buf = Buffer.create 128 in
  Graph.iter g (fun i ->
      Array.iter
        (fun d ->
          match Symshape.Table.resolve tab d with
          | Symshape.Sym.Sym root when not (Hashtbl.mem seen root) ->
              Hashtbl.add seen root ();
              let lb = Symshape.Table.lower_bound tab d in
              let ub = Symshape.Table.upper_bound tab d in
              let likely = Symshape.Table.likely_values tab d in
              Buffer.add_string buf (Printf.sprintf "  sym s%d lb=%d" root lb);
              (match ub with
              | Some u -> Buffer.add_string buf (Printf.sprintf " ub=%d" u)
              | None -> ());
              if likely <> [] then
                Buffer.add_string buf
                  (" likely=" ^ String.concat "," (List.map string_of_int likely));
              Buffer.add_char buf '\n'
          | _ -> ())
        i.shape);
  Buffer.contents buf

let to_string ?(with_symbols = false) (g : Graph.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph {\n";
  if with_symbols then Buffer.add_string buf (symbol_headers g);
  Graph.iter g (fun i ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (inst_to_string i);
      Buffer.add_char buf '\n');
  Buffer.add_string buf
    ("  return "
    ^ String.concat ", " (List.map (fun o -> "%" ^ string_of_int o) (Graph.outputs g))
    ^ "\n}\n");
  Buffer.contents buf

let pp fmt g = Format.pp_print_string fmt (to_string ~with_symbols:false g)
