(** The tensor operator set — an HLO/mhlo-like instruction vocabulary.

    Attributes that must be shape-generic (broadcast targets, reshape
    results, iota shapes) carry {e symbolic} shapes, which is what lets a
    single compiled artifact serve arbitrary runtime shapes. *)

type unary =
  | Neg
  | Abs
  | Exp
  | Log
  | Tanh
  | Sqrt
  | Rsqrt
  | Erf
  | Sign
  | Ceil
  | Floor
  | Logistic
  | Not

type binary =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Max
  | Min
  | Rem
  | And
  | Or

type cmp = Tensor.Ops_ref.cmp = Eq | Ne | Lt | Le | Gt | Ge

type reduce_kind = Tensor.Ops_ref.reduce_kind = R_sum | R_prod | R_max | R_min | R_any

type t =
  | Parameter of { index : int; pname : string }
  | Constant of Tensor.Nd.t
  | Iota of { out : Symshape.Sym.shape; dim : int }
  | Unary of unary
  | Binary of binary
  | Compare of cmp
  | Select  (** select(pred, on_true, on_false) *)
  | Cast of Tensor.Dtype.t
  | Broadcast of { dims : int array; out : Symshape.Sym.shape }
      (** HLO broadcast_in_dim: input dim [i] maps to output dim [dims.(i)]. *)
  | Reshape of Symshape.Sym.shape
  | Transpose of int array
  | Concat of { axis : int }
  | Slice of { starts : int array; limits : int array; strides : int array }
      (** A limit of [-1] means "to the end" and is the only form allowed
          on a symbolic dimension. *)
  | Pad of { low : int array; high : int array; value : float }
  | Reduce of { kind : reduce_kind; dims : int list }
  | Dot  (** batched matmul \[..,m,k\] x \[..,k,n\] *)
  | Conv2d of { strides : int * int; padding : int * int }
      (** NHWC input, \[kh,kw,c,f\] static filter. *)
  | Gather  (** gather(operand, indices): take rows along axis 0 *)
  | Reduce_window of {
      kind : reduce_kind;
      window : int * int;
      strides : int * int;
      padding : int * int;
    }  (** spatial pooling over NHWC input *)
  | Argmax of { dim : int }  (** i32 index of the maximum along [dim] *)

val unary_to_string : unary -> string
val binary_to_string : binary -> string
val cmp_to_string : cmp -> string
val to_string : t -> string

(** How the fusion planner treats an op (paper §5). *)
type fusion_class =
  | Elementwise
  | Shape_manipulating
  | Reduction
  | Library
  | Opaque

val fusion_class : t -> fusion_class

val flops_per_element : t -> float
(** Approximate arithmetic cost per output element (device cost model);
    0 for pure data movement and library ops (those are costed separately). *)
