(* Thin convenience layer over Graph.add for hand-building programs. *)

module Sym = Symshape.Sym
module Dtype = Tensor.Dtype

type v = int

let param g ~name shape dtype = Graph.parameter g ~name shape dtype

let const g nd = Graph.add g (Op.Constant nd) []

let constf g x = const g (Tensor.Nd.scalar x)

let consti g x = const g (Tensor.Nd.scalar ~dtype:Dtype.I32 (float_of_int x))

let unary g u a = Graph.add g (Op.Unary u) [ a ]
let neg g a = unary g Op.Neg a
let abs g a = unary g Op.Abs a
let exp g a = unary g Op.Exp a
let log g a = unary g Op.Log a
let tanh g a = unary g Op.Tanh a
let sqrt g a = unary g Op.Sqrt a
let rsqrt g a = unary g Op.Rsqrt a
let erf g a = unary g Op.Erf a
let logistic g a = unary g Op.Logistic a

let binary g b x y = Graph.add g (Op.Binary b) [ x; y ]
let add g x y = binary g Op.Add x y
let sub g x y = binary g Op.Sub x y
let mul g x y = binary g Op.Mul x y
let div g x y = binary g Op.Div x y
let pow g x y = binary g Op.Pow x y
let max_ g x y = binary g Op.Max x y
let min_ g x y = binary g Op.Min x y

let cmp g c x y = Graph.add g (Op.Compare c) [ x; y ]
let select g p t f = Graph.add g Op.Select [ p; t; f ]
let cast g d a = Graph.add g (Op.Cast d) [ a ]

let broadcast g a ~dims ~out = Graph.add g (Op.Broadcast { dims; out }) [ a ]

(* Broadcast a rank-[r] value to shape [out] by aligning trailing dims
   (numpy-style placement). *)
let broadcast_trailing g a ~out =
  let ra = Sym.rank (Graph.inst g a).shape and ro = Array.length out in
  let dims = Array.init ra (fun i -> ro - ra + i) in
  broadcast g a ~dims ~out

let reshape g a out = Graph.add g (Op.Reshape out) [ a ]
let transpose g a perm = Graph.add g (Op.Transpose perm) [ a ]
let concat g ~axis xs = Graph.add g (Op.Concat { axis }) xs
let slice g a ~starts ~limits ~strides = Graph.add g (Op.Slice { starts; limits; strides }) [ a ]
let pad g a ~low ~high ~value = Graph.add g (Op.Pad { low; high; value }) [ a ]
let reduce g kind a ~dims = Graph.add g (Op.Reduce { kind; dims }) [ a ]
let reduce_sum g a ~dims = reduce g Op.R_sum a ~dims
let reduce_max g a ~dims = reduce g Op.R_max a ~dims
let dot g x y = Graph.add g Op.Dot [ x; y ]
let conv2d g x w ~strides ~padding = Graph.add g (Op.Conv2d { strides; padding }) [ x; w ]
let gather g operand indices = Graph.add g Op.Gather [ operand; indices ]

let reduce_window g kind a ~window ~strides ~padding =
  Graph.add g (Op.Reduce_window { kind; window; strides; padding }) [ a ]

let max_pool2d g a ~window ~strides =
  reduce_window g Op.R_max a ~window ~strides ~padding:(0, 0)

let argmax g a ~dim = Graph.add g (Op.Argmax { dim }) [ a ]
let iota g ~out ~dim = Graph.add g (Op.Iota { out; dim }) []

(* x + c, x * c, ... against a scalar constant. *)
let addf g x c = add g x (constf g c)
let mulf g x c = mul g x (constf g c)
let subf g x c = sub g x (constf g c)
let divf g x c = div g x (constf g c)
let maxf g x c = max_ g x (constf g c)
let minf g x c = min_ g x (constf g c)

(* clamp(x, lo, hi) as a min/max composite *)
let clamp g x ~lo ~hi = minf g (maxf g x lo) hi

let relu g x = maxf g x 0.0

(* gelu(x) = 0.5 x (1 + erf(x / sqrt 2)) *)
let gelu g x =
  let e = erf g (mulf g x (1.0 /. Float.sqrt 2.0)) in
  mul g (mulf g x 0.5) (addf g e 1.0)

(* Keep-dims row reduce: reduce the last axis and broadcast back. *)
let reduce_lastdim_keep g kind x =
  let shape = (Graph.inst g x).shape in
  let r = Array.length shape in
  let red = reduce g kind x ~dims:[ r - 1 ] in
  broadcast g red ~dims:(Array.init (r - 1) (fun i -> i)) ~out:shape

(* Numerically-stabilized softmax along the last axis. *)
let softmax g x =
  let m = reduce_lastdim_keep g Op.R_max x in
  let e = exp g (sub g x m) in
  let s = reduce_lastdim_keep g Op.R_sum e in
  div g e s

(* Layer normalization over the last axis with affine scale/bias values. *)
let layernorm g x ~scale ~bias ~eps =
  let shape = (Graph.inst g x).shape in
  let r = Array.length shape in
  let n_dim = shape.(r - 1) in
  let n =
    match Symshape.Sym.static_value n_dim with
    | Some v -> float_of_int v
    | None -> invalid_arg "layernorm: last axis must be static (hidden size)"
  in
  let mean = divf g (reduce_lastdim_keep g Op.R_sum x) n in
  let centered = sub g x mean in
  let var = divf g (reduce_lastdim_keep g Op.R_sum (mul g centered centered)) n in
  let inv = rsqrt g (addf g var eps) in
  let normed = mul g centered inv in
  let scaled = mul g normed (broadcast_trailing g scale ~out:shape) in
  add g scaled (broadcast_trailing g bias ~out:shape)
