(** Graph cloning with optional dimension binding.

    [clone ~bind g] rebuilds [g] into a fresh graph with a fresh symbol
    table, substituting the listed symbolic dims with static values and
    re-creating the remaining symbols (ranges and likely values copied).
    Shapes and constraints are re-inferred during reconstruction. With
    every dynamic dim bound, the clone is a fully static program — the
    basis of hot-shape specialization. *)

val clone : ?bind:(Symshape.Sym.dim * int) list -> Graph.t -> Graph.t
