(* Graph-level optimization passes. All rewrites preserve the builder's
   topological invariant: they either mutate an instruction in place or
   redirect uses to an earlier instruction. *)

module Sym = Symshape.Sym
module Table = Symshape.Table

type stats = { mutable simplified : int; mutable cse_removed : int; mutable dce_removed : int }

let empty_stats () = { simplified = 0; cse_removed = 0; dce_removed = 0 }

let stats_to_string s =
  Printf.sprintf "simplified=%d cse=%d dce=%d" s.simplified s.cse_removed s.dce_removed

(* --- Dead code elimination -------------------------------------------- *)

let dce ?(stats = empty_stats ()) (g : Graph.t) =
  let live = Hashtbl.create 64 in
  let rec mark id =
    if not (Hashtbl.mem live id) then begin
      Hashtbl.add live id ();
      Array.iter mark (Graph.inst g id).args
    end
  in
  List.iter mark (Graph.outputs g);
  List.iter (fun (pid, _) -> mark pid) (Graph.parameters g);
  let dead = Graph.fold g (fun acc i -> if Hashtbl.mem live i.id then acc else i.id :: acc) [] in
  List.iter
    (fun id ->
      Graph.remove g id;
      stats.dce_removed <- stats.dce_removed + 1)
    dead;
  stats

(* --- Common subexpression elimination ---------------------------------- *)

let op_key (i : Graph.inst) = Hashtbl.hash (Op.to_string i.op, Array.to_list i.args)

let insts_equal (a : Graph.inst) (b : Graph.inst) = a.op = b.op && a.args = b.args

let cse ?(stats = empty_stats ()) (g : Graph.t) =
  let seen : (int, Graph.inst list) Hashtbl.t = Hashtbl.create 64 in
  Graph.iter g (fun i ->
      match i.op with
      | Op.Parameter _ -> ()
      | _ -> (
          let key = op_key i in
          let bucket = Option.value (Hashtbl.find_opt seen key) ~default:[] in
          match List.find_opt (insts_equal i) bucket with
          | Some earlier ->
              Graph.replace_uses g ~old_id:i.id ~new_id:earlier.id;
              stats.cse_removed <- stats.cse_removed + 1
          | None -> Hashtbl.replace seen key (i :: bucket)));
  stats

(* --- Algebraic & shape-constraint simplification ----------------------- *)

let is_scalar_const g id v =
  match (Graph.inst g id).op with
  | Op.Constant nd -> Tensor.Nd.numel nd = 1 && Tensor.Nd.get_linear nd 0 = v
  | _ -> false

let identity_perm perm = Array.for_all2 ( = ) perm (Array.init (Array.length perm) (fun i -> i))

(* One simplification attempt; [Some id] redirects uses of [i] to [id]. *)
let simplify_inst (g : Graph.t) (i : Graph.inst) : int option =
  let tab = Graph.symtab g in
  let arg k = Graph.inst g i.args.(k) in
  match i.op with
  | Op.Binary Op.Add when is_scalar_const g i.args.(1) 0.0 -> Some i.args.(0)
  | Op.Binary Op.Add when is_scalar_const g i.args.(0) 0.0 -> Some i.args.(1)
  | Op.Binary Op.Sub when is_scalar_const g i.args.(1) 0.0 -> Some i.args.(0)
  | Op.Binary Op.Mul when is_scalar_const g i.args.(1) 1.0 -> Some i.args.(0)
  | Op.Binary Op.Mul when is_scalar_const g i.args.(0) 1.0 -> Some i.args.(1)
  | Op.Binary Op.Div when is_scalar_const g i.args.(1) 1.0 -> Some i.args.(0)
  | Op.Binary Op.Pow when is_scalar_const g i.args.(1) 1.0 -> Some i.args.(0)
  | Op.Cast d when (arg 0).dtype = d -> Some i.args.(0)
  | Op.Transpose perm when identity_perm perm -> Some i.args.(0)
  | Op.Transpose perm -> (
      let a = arg 0 in
      match a.op with
      | Op.Transpose inner ->
          (* transpose(transpose(x, inner), perm) = transpose(x, inner ∘ perm) *)
          let composed = Array.map (fun p -> inner.(p)) perm in
          i.op <- Op.Transpose composed;
          i.args <- [| a.args.(0) |];
          if identity_perm composed then Some a.args.(0) else None
      | _ -> None)
  | Op.Reshape out -> (
      let a = arg 0 in
      match a.op with
      | Op.Reshape _ ->
          i.args <- [| a.args.(0) |];
          let src = Graph.inst g a.args.(0) in
          if Table.equal_shapes tab src.shape out then Some a.args.(0) else None
      | _ -> if Table.equal_shapes tab a.shape out then Some i.args.(0) else None)
  | Op.Broadcast { dims; out } -> (
      let a = arg 0 in
      (* Shape-constraint-driven: a broadcast whose operand provably has
         the target shape already (all dims merged equal, identity
         mapping) is a no-op — the key dynamic-shape cleanup from the
         paper, impossible without symbol equality. *)
      let identity_map =
        Array.length dims = Sym.rank out && identity_perm dims
        && Table.equal_shapes tab a.shape out
      in
      if identity_map then Some i.args.(0)
      else
        match a.op with
        | Op.Broadcast { dims = inner_dims; out = _ } ->
            (* broadcast(broadcast(x)) : compose the dim mappings. *)
            let composed = Array.map (fun d -> dims.(d)) inner_dims in
            i.op <- Op.Broadcast { dims = composed; out };
            i.args <- [| a.args.(0) |];
            None
        | _ -> None)
  | Op.Slice { starts; limits; strides } ->
      let a = arg 0 in
      let full =
        Array.length starts = Sym.rank a.shape
        && Array.for_all (fun s -> s = 0) starts
        && Array.for_all (fun s -> s = 1) strides
        && Array.for_all2
             (fun l d ->
               l = -1 || match Table.resolve tab d with Sym.Static v -> l = v | _ -> false)
             limits a.shape
      in
      if full then Some i.args.(0) else None
  | Op.Pad { low; high; _ }
    when Array.for_all (fun x -> x = 0) low && Array.for_all (fun x -> x = 0) high ->
      Some i.args.(0)
  | Op.Select when (match (arg 0).op with Op.Constant nd -> Tensor.Nd.numel nd = 1 | _ -> false)
    -> (
      match (arg 0).op with
      | Op.Constant nd -> Some (if Tensor.Nd.get_linear nd 0 <> 0.0 then i.args.(1) else i.args.(2))
      | _ -> None)
  | _ -> None

let simplify ?(stats = empty_stats ()) (g : Graph.t) =
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 8 do
    changed := false;
    incr rounds;
    Graph.iter g (fun i ->
        match simplify_inst g i with
        | Some target ->
            Graph.replace_uses g ~old_id:i.id ~new_id:target;
            stats.simplified <- stats.simplified + 1;
            changed := true
        | None -> ())
  done;
  stats

(* --- Constant folding --------------------------------------------------- *)

(* Evaluate instructions whose operands are all constants and whose
   result shape is fully static (so no runtime binding is needed),
   replacing them by materialized constants. Bounded by element count to
   avoid exploding the graph with huge literals. *)
let fold_constants ?(stats = empty_stats ()) ?(max_elements = 65536) (g : Graph.t) =
  let tab = Graph.symtab g in
  let empty_bnd = Symshape.Table.empty_binding () in
  Graph.iter g (fun i ->
      match i.op with
      | Op.Parameter _ | Op.Constant _ -> ()
      | _ ->
          let args_const =
            Array.for_all
              (fun a ->
                match (Graph.inst g a).op with Op.Constant _ -> true | _ -> false)
              i.args
          in
          let static =
            Sym.shape_is_static (Array.map (Symshape.Table.resolve tab) i.shape)
          in
          let small =
            match Sym.numel_static (Array.map (Symshape.Table.resolve tab) i.shape) with
            | Some n -> n <= max_elements
            | None -> false
          in
          if args_const && static && small then begin
            let value_of id =
              match (Graph.inst g id).op with
              | Op.Constant nd -> nd
              | _ -> assert false
            in
            match Interp.eval_inst g empty_bnd value_of i with
            | nd ->
                i.op <- Op.Constant nd;
                i.args <- [||];
                stats.simplified <- stats.simplified + 1
            | exception _ -> () (* leave non-evaluable instructions alone *)
          end);
  stats

(* Canonical cleanup pipeline run before fusion. *)
let run_all (g : Graph.t) =
  let stats = empty_stats () in
  ignore (fold_constants ~stats g);
  ignore (simplify ~stats g);
  ignore (cse ~stats g);
  ignore (dce ~stats g);
  stats
