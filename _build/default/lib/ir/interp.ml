(* Reference interpreter: evaluates a graph op-by-op on Nd tensors using
   Ops_ref semantics. Ground truth for compiled executables, and the data
   plane of the op-by-op baseline executors. *)

module Nd = Tensor.Nd
module Shape = Tensor.Shape
module Ops = Tensor.Ops_ref
module Sym = Symshape.Sym
module Table = Symshape.Table

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let unary_fn : Op.unary -> Nd.t -> Nd.t = function
  | Op.Neg -> Ops.neg
  | Op.Abs -> Ops.abs
  | Op.Exp -> Ops.exp
  | Op.Log -> Ops.log
  | Op.Tanh -> Ops.tanh
  | Op.Sqrt -> Ops.sqrt
  | Op.Rsqrt -> Ops.rsqrt
  | Op.Erf -> Ops.erf_t
  | Op.Sign -> Ops.sign
  | Op.Ceil -> Ops.ceil
  | Op.Floor -> Ops.floor
  | Op.Logistic -> Ops.logistic
  | Op.Not -> Ops.not_t

let binary_fn : Op.binary -> Nd.t -> Nd.t -> Nd.t = function
  | Op.Add -> Ops.add
  | Op.Sub -> Ops.sub
  | Op.Mul -> Ops.mul
  | Op.Div -> Ops.div
  | Op.Pow -> Ops.pow
  | Op.Max -> Ops.max_t
  | Op.Min -> Ops.min_t
  | Op.Rem -> Ops.rem
  | Op.And -> Ops.and_t
  | Op.Or -> Ops.or_t

(* Bind all parameter shapes, giving concrete values to every input
   symbol (derived symbols evaluate through the table). *)
let bind_inputs (g : Graph.t) (inputs : Nd.t list) : Table.binding =
  let tab = Graph.symtab g in
  let params = Graph.parameters g in
  if List.length params <> List.length inputs then
    eval_error "expected %d inputs, got %d" (List.length params) (List.length inputs);
  let bnd = Table.empty_binding () in
  List.iter2
    (fun (pid, _name) nd ->
      let i = Graph.inst g pid in
      Table.bind_shape tab bnd i.shape (Nd.shape nd))
    params inputs;
  bnd

let eval_inst (g : Graph.t) (bnd : Table.binding) (value_of : int -> Nd.t)
    (i : Graph.inst) : Nd.t =
  let tab = Graph.symtab g in
  let arg k = value_of i.args.(k) in
  let conc_shape (s : Sym.shape) = Table.eval_shape tab bnd s in
  match i.op with
  | Op.Parameter _ -> eval_error "parameter %%%d reached eval_inst" i.id
  | Op.Constant nd -> nd
  | Op.Iota { out; dim } -> Ops.iota (conc_shape out) ~dim
  | Op.Unary u -> unary_fn u (arg 0)
  | Op.Binary b -> binary_fn b (arg 0) (arg 1)
  | Op.Compare c -> Ops.compare c (arg 0) (arg 1)
  | Op.Select -> Ops.select ~pred:(arg 0) ~on_true:(arg 1) ~on_false:(arg 2)
  | Op.Cast d -> Ops.cast d (arg 0)
  | Op.Broadcast { dims; out } -> Ops.broadcast_in_dim (arg 0) ~out:(conc_shape out) ~dims
  | Op.Reshape out -> Ops.reshape (arg 0) (conc_shape out)
  | Op.Transpose perm -> Ops.transpose (arg 0) perm
  | Op.Concat { axis } -> Ops.concat (List.map value_of (Array.to_list i.args)) ~axis
  | Op.Slice { starts; limits; strides } ->
      let a = arg 0 in
      let s = Nd.shape a in
      let limits = Array.mapi (fun k l -> if l = -1 then s.(k) else l) limits in
      Ops.slice a ~starts ~limits ~strides
  | Op.Pad { low; high; value } -> Ops.pad (arg 0) ~low ~high ~value
  | Op.Reduce { kind; dims } -> Ops.reduce kind (arg 0) ~dims
  | Op.Dot -> Ops.matmul (arg 0) (arg 1)
  | Op.Conv2d { strides; padding } -> Ops.conv2d (arg 0) (arg 1) ~strides ~padding
  | Op.Gather -> Ops.gather (arg 0) (arg 1)
  | Op.Reduce_window { kind; window; strides; padding } ->
      Ops.reduce_window kind (arg 0) ~window ~strides ~padding
  | Op.Argmax { dim } -> Ops.argmax (arg 0) ~dim

let run (g : Graph.t) (inputs : Nd.t list) : Nd.t list =
  let bnd = bind_inputs g inputs in
  let values : (int, Nd.t) Hashtbl.t = Hashtbl.create 64 in
  let params = Graph.parameters g in
  List.iter2 (fun (pid, _) nd -> Hashtbl.replace values pid nd) params inputs;
  let value_of id =
    match Hashtbl.find_opt values id with
    | Some v -> v
    | None -> eval_error "value %%%d not computed" id
  in
  Graph.iter g (fun i ->
      match i.op with
      | Op.Parameter _ -> ()
      | _ -> Hashtbl.replace values i.id (eval_inst g bnd value_of i));
  List.map value_of (Graph.outputs g)
