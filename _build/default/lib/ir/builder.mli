(** Convenience constructors over {!Graph.add} for hand-building
    programs, plus the composite layers (softmax, layernorm, gelu) the
    models share. Every function appends instructions to the given graph
    and returns the new value's id. *)

module Sym = Symshape.Sym
module Dtype = Tensor.Dtype

type v = int
(** A value id within the graph. *)

val param : Graph.t -> name:string -> Sym.shape -> Dtype.t -> v
val const : Graph.t -> Tensor.Nd.t -> v
val constf : Graph.t -> float -> v
(** Scalar f32 constant. *)

val consti : Graph.t -> int -> v
(** Scalar i32 constant. *)

(** {1 Elementwise} *)

val unary : Graph.t -> Op.unary -> v -> v
val neg : Graph.t -> v -> v
val abs : Graph.t -> v -> v
val exp : Graph.t -> v -> v
val log : Graph.t -> v -> v
val tanh : Graph.t -> v -> v
val sqrt : Graph.t -> v -> v
val rsqrt : Graph.t -> v -> v
val erf : Graph.t -> v -> v
val logistic : Graph.t -> v -> v

val binary : Graph.t -> Op.binary -> v -> v -> v
val add : Graph.t -> v -> v -> v
val sub : Graph.t -> v -> v -> v
val mul : Graph.t -> v -> v -> v
val div : Graph.t -> v -> v -> v
val pow : Graph.t -> v -> v -> v
val max_ : Graph.t -> v -> v -> v
val min_ : Graph.t -> v -> v -> v

val cmp : Graph.t -> Op.cmp -> v -> v -> v
val select : Graph.t -> v -> v -> v -> v
val cast : Graph.t -> Dtype.t -> v -> v

(** {1 Against scalar constants} *)

val addf : Graph.t -> v -> float -> v
val mulf : Graph.t -> v -> float -> v
val subf : Graph.t -> v -> float -> v
val divf : Graph.t -> v -> float -> v
val maxf : Graph.t -> v -> float -> v
val minf : Graph.t -> v -> float -> v

val clamp : Graph.t -> v -> lo:float -> hi:float -> v
(** min(max(x, lo), hi) composite. *)

(** {1 Shape & structure} *)

val broadcast : Graph.t -> v -> dims:int array -> out:Sym.shape -> v
val broadcast_trailing : Graph.t -> v -> out:Sym.shape -> v
(** Numpy-style: align the operand's dims with the trailing dims of [out]. *)

val reshape : Graph.t -> v -> Sym.shape -> v
val transpose : Graph.t -> v -> int array -> v
val concat : Graph.t -> axis:int -> v list -> v
val slice : Graph.t -> v -> starts:int array -> limits:int array -> strides:int array -> v
val pad : Graph.t -> v -> low:int array -> high:int array -> value:float -> v
val reduce : Graph.t -> Op.reduce_kind -> v -> dims:int list -> v
val reduce_sum : Graph.t -> v -> dims:int list -> v
val reduce_max : Graph.t -> v -> dims:int list -> v
val dot : Graph.t -> v -> v -> v
val conv2d : Graph.t -> v -> v -> strides:int * int -> padding:int * int -> v
val gather : Graph.t -> v -> v -> v

val reduce_window :
  Graph.t -> Op.reduce_kind -> v -> window:int * int -> strides:int * int ->
  padding:int * int -> v
(** Spatial pooling over an NHWC value. *)

val max_pool2d : Graph.t -> v -> window:int * int -> strides:int * int -> v

val argmax : Graph.t -> v -> dim:int -> v
(** i32 index of the maximum along [dim]. *)

val iota : Graph.t -> out:Sym.shape -> dim:int -> v

(** {1 Composite layers} *)

val relu : Graph.t -> v -> v
val gelu : Graph.t -> v -> v
(** Exact gelu: 0.5·x·(1 + erf(x/√2)). *)

val reduce_lastdim_keep : Graph.t -> Op.reduce_kind -> v -> v
(** Reduce the last axis and broadcast back to the input shape. *)

val softmax : Graph.t -> v -> v
(** Numerically-stabilized softmax along the last axis. *)

val layernorm : Graph.t -> v -> scale:v -> bias:v -> eps:float -> v
(** Layer normalization over the (static) last axis. *)
