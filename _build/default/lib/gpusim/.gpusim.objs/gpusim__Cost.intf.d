lib/gpusim/cost.mli: Device
