lib/gpusim/device.mli:
