lib/gpusim/cost.ml: Device Float
