lib/gpusim/device.ml:
