(** Analytical roofline kernel cost model for the simulated device. *)

type kernel_work = {
  bytes_read : int;
  bytes_written : int;
  flops : float;
  mem_efficiency : float;  (** fraction of peak bandwidth achieved *)
  compute_efficiency : float;  (** fraction of peak FLOPS achieved *)
  blocks : int;  (** launch grid size (occupancy input) *)
  threads_per_block : int;
  fp16_math : bool;  (** arithmetic at the fp16/tensor-core rate *)
}

val default_work : kernel_work

val occupancy : Device.t -> kernel_work -> float
(** In (0, 1]; sub-1 when the grid cannot fill the device. *)

val mem_time_us : Device.t -> kernel_work -> float
val compute_time_us : Device.t -> kernel_work -> float

val body_time_us : Device.t -> kernel_work -> float
(** Kernel body time (roofline / occupancy + fixed tail), no dispatch. *)

val kernel_time_us : Device.t -> kernel_work -> float
(** [kernel_launch_us + body_time_us]. *)

val gemm_work : batch:int -> m:int -> n:int -> k:int -> elem_bytes:int -> kernel_work
(** Batched GEMM work descriptor with cuBLAS-style tile-utilization
    efficiency (skinny/small problems run far below peak). *)

val conv2d_work :
  out_numel:int -> kh:int -> kw:int -> cin:int -> in_bytes:int -> out_bytes:int -> kernel_work
