(* Analytical kernel cost model.

   A kernel execution is described by its memory traffic, arithmetic
   work and schedule quality; the model combines them roofline-style:

     time = launch + tail + max(mem_time, compute_time) / occupancy_ramp

   Occupancy captures the small-shape regime where a kernel cannot fill
   the device (short sequences / tiny batches), which is exactly where
   launch overhead and fusion dominate end-to-end latency — the regime
   the paper's evaluation stresses. *)

type kernel_work = {
  bytes_read : int;
  bytes_written : int;
  flops : float;
  mem_efficiency : float; (* fraction of peak bandwidth achieved *)
  compute_efficiency : float; (* fraction of peak flops achieved *)
  blocks : int; (* launch grid size, for occupancy *)
  threads_per_block : int;
  fp16_math : bool; (* run arithmetic at the fp16/tensor-core rate *)
}

let default_work =
  {
    bytes_read = 0;
    bytes_written = 0;
    flops = 0.0;
    mem_efficiency = 0.85;
    compute_efficiency = 0.6;
    blocks = 1;
    threads_per_block = 256;
    fp16_math = false;
  }

(* Fraction of the device a launch can keep busy. Each SM runs ~4 blocks
   of 256 threads concurrently; below that the kernel is partially
   latency-bound. *)
let occupancy (d : Device.t) (w : kernel_work) =
  let resident = float_of_int (d.sm_count * 4) in
  let b = float_of_int (max 1 w.blocks) in
  Float.min 1.0 ((b /. resident) ** 0.75)

let mem_time_us (d : Device.t) (w : kernel_work) =
  let bytes = float_of_int (w.bytes_read + w.bytes_written) in
  bytes /. (d.mem_bandwidth_gbs *. 1e3 *. w.mem_efficiency)
(* GB/s = bytes/µs * 1e-3 => bytes / (GB/s * 1e3) = µs *)

let compute_time_us (d : Device.t) (w : kernel_work) =
  let peak = if w.fp16_math then d.fp16_tflops else d.fp32_tflops in
  w.flops /. (peak *. 1e6 *. w.compute_efficiency)
(* TFLOPS = flops/µs * 1e-6 *)

(* Kernel body time, excluding dispatch. *)
let body_time_us (d : Device.t) (w : kernel_work) =
  let occ = Float.max 0.05 (occupancy d w) in
  let roofline = Float.max (mem_time_us d w) (compute_time_us d w) in
  d.kernel_tail_us +. (roofline /. occ)

let kernel_time_us (d : Device.t) (w : kernel_work) =
  d.kernel_launch_us +. body_time_us d w

(* Library GEMM: batched [m,k]x[k,n]. Efficiency ramps with tile
   utilization the way cuBLAS does: small/skinny problems waste most of
   the device. *)
let gemm_work ~batch ~m ~n ~k ~elem_bytes =
  (* cuBLAS-style: boundary-tile waste lowers efficiency for skinny
     problems, but the library fills the device via split-K/small tiles,
     so no additional occupancy penalty applies (blocks kept high). *)
  let natural = batch * ((m + 127) / 128) * ((n + 127) / 128) in
  let tile_util =
    let frac x = float_of_int x /. float_of_int (((x + 127) / 128) * 128) in
    frac m *. frac n
  in
  let flops = 2.0 *. float_of_int batch *. float_of_int m *. float_of_int n *. float_of_int k in
  {
    default_work with
    bytes_read = elem_bytes * batch * ((m * k) + (k * n));
    bytes_written = elem_bytes * batch * m * n;
    flops;
    compute_efficiency = 0.08 +. (0.47 *. (tile_util ** 0.7));
    mem_efficiency = 0.85;
    blocks = max natural 512;
    fp16_math = elem_bytes <= 2;
  }

let conv2d_work ~out_numel ~kh ~kw ~cin ~in_bytes ~out_bytes =
  let flops = 2.0 *. float_of_int out_numel *. float_of_int (kh * kw * cin) in
  {
    default_work with
    bytes_read = in_bytes;
    bytes_written = out_bytes;
    flops;
    compute_efficiency = 0.45;
    mem_efficiency = 0.8;
    blocks = max 1 (out_numel / (256 * 8));
  }
