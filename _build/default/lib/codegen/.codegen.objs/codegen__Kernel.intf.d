lib/codegen/kernel.mli: Fusion Gpusim Ir Symshape Tensor
