lib/codegen/emit.ml: Array Buffer Fusion Hashtbl Ir Kernel List Printf Scanf String Symshape Tensor
