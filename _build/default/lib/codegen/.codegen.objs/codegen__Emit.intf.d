lib/codegen/emit.mli: Fusion Ir Kernel
