lib/codegen/kernel.ml: Array Float Fusion Gpusim Hashtbl Ir List Printf Stdlib String Symshape Tensor
