(* Pseudo-CUDA rendering of compiled kernels.

   The execution substrate is simulated, but the code-generation
   questions the paper solves are real and visible here: a single kernel
   body parameterized by runtime dims (never shape constants), index
   remapping for broadcast/reshape/transpose computed from those dims,
   block-per-row reductions, shared-memory relays between kStitch
   stages, and the guarded speculative versions.

   The output is for humans (and tests): `discc compile --dump kernel`. *)

module Sym = Symshape.Sym
module Table = Symshape.Table
module Graph = Ir.Graph
module Op = Ir.Op
module Cluster = Fusion.Cluster

let buf_add = Buffer.add_string

(* C-ish name for a value. *)
let vname id = Printf.sprintf "v%d" id

(* Render a symbolic dim as either a literal or a runtime dims[] load. *)
let dim_expr (tab : Table.t) (dim_slot : (int, int) Hashtbl.t) (d : Sym.dim) =
  match Table.resolve tab d with
  | Sym.Static v -> string_of_int v
  | Sym.Sym root ->
      let slot =
        match Hashtbl.find_opt dim_slot root with
        | Some s -> s
        | None ->
            let s = Hashtbl.length dim_slot in
            Hashtbl.add dim_slot root s;
            s
      in
      Printf.sprintf "dims[%d]" slot

let shape_numel_expr tab dim_slot (s : Sym.shape) =
  if Array.length s = 0 then "1"
  else String.concat " * " (Array.to_list (Array.map (dim_expr tab dim_slot) s))

let unary_c = function
  | Op.Neg -> ("-(%s)", true)
  | Op.Abs -> ("fabsf(%s)", true)
  | Op.Exp -> ("__expf(%s)", true)
  | Op.Log -> ("__logf(%s)", true)
  | Op.Tanh -> ("tanhf(%s)", true)
  | Op.Sqrt -> ("sqrtf(%s)", true)
  | Op.Rsqrt -> ("rsqrtf(%s)", true)
  | Op.Erf -> ("erff(%s)", true)
  | Op.Sign -> ("copysignf(%s != 0.f, %s)", false)
  | Op.Ceil -> ("ceilf(%s)", true)
  | Op.Floor -> ("floorf(%s)", true)
  | Op.Logistic -> ("1.f / (1.f + __expf(-(%s)))", true)
  | Op.Not -> ("!(%s)", true)

let binary_c = function
  | Op.Add -> "%s + %s"
  | Op.Sub -> "%s - %s"
  | Op.Mul -> "%s * %s"
  | Op.Div -> "%s / %s"
  | Op.Pow -> "__powf(%s, %s)"
  | Op.Max -> "fmaxf(%s, %s)"
  | Op.Min -> "fminf(%s, %s)"
  | Op.Rem -> "fmodf(%s, %s)"
  | Op.And -> "%s && %s"
  | Op.Or -> "%s || %s"

let cmp_c = function
  | Op.Eq -> "==" | Op.Ne -> "!=" | Op.Lt -> "<" | Op.Le -> "<=" | Op.Gt -> ">" | Op.Ge -> ">="

(* Statement for one member instruction at linear index [idx] of the
   kernel domain. Inputs are loads from global (or shared) memory;
   shape-manipulating members become index arithmetic comments + remapped
   loads of their producers. *)
let member_stmt tab dim_slot ~is_input (i : Graph.inst) =
  let a k = vname i.args.(k) in
  let load id from =
    Printf.sprintf "float %s = %s;" (vname id) from
  in
  match i.op with
  | Op.Parameter _ | Op.Constant _ -> Printf.sprintf "/* %s resident */" (vname i.id)
  | Op.Unary u ->
      let fmt, single = unary_c u in
      let body =
        if single then Printf.sprintf (Scanf.format_from_string fmt "%s") (a 0)
        else Printf.sprintf (Scanf.format_from_string fmt "%s%s") (a 0) (a 0)
      in
      Printf.sprintf "float %s = %s;" (vname i.id) body
  | Op.Binary b ->
      Printf.sprintf "float %s = %s;" (vname i.id)
        (Printf.sprintf (Scanf.format_from_string (binary_c b) "%s%s") (a 0) (a 1))
  | Op.Compare c ->
      Printf.sprintf "bool %s = %s %s %s;" (vname i.id) (a 0) (cmp_c c) (a 1)
  | Op.Select -> Printf.sprintf "float %s = %s ? %s : %s;" (vname i.id) (a 0) (a 1) (a 2)
  | Op.Cast d ->
      Printf.sprintf "%s %s = (%s)%s;"
        (if Tensor.Dtype.is_floating d then "float" else "int")
        (vname i.id)
        (if Tensor.Dtype.is_floating d then "float" else "int")
        (a 0)
  | Op.Broadcast { dims; out } ->
      let mapping =
        String.concat ", " (Array.to_list (Array.mapi (fun k d -> Printf.sprintf "%d->%d" k d) dims))
      in
      load i.id
        (Printf.sprintf "%s /* broadcast: src dims [%s] of out %s; stride-0 on the rest */"
           (a 0) mapping
           (shape_numel_expr tab dim_slot out))
  | Op.Reshape out ->
      load i.id
        (Printf.sprintf "%s /* reshape: same linear index, logical shape numel=%s */" (a 0)
           (shape_numel_expr tab dim_slot out))
  | Op.Transpose perm ->
      load i.id
        (Printf.sprintf "%s /* transpose perm=[%s]: idx delinearized and permuted */" (a 0)
           (String.concat "," (List.map string_of_int (Array.to_list perm))))
  | Op.Slice _ -> load i.id (Printf.sprintf "%s /* slice: offset index */" (a 0))
  | Op.Pad { value; _ } ->
      load i.id (Printf.sprintf "in_bounds(idx) ? %s : %gf /* pad */" (a 0) value)
  | Op.Iota { dim; _ } ->
      Printf.sprintf "float %s = (float)index_along_dim(idx, %d);" (vname i.id) dim
  | Op.Reduce { kind; dims } ->
      let comb =
        match kind with
        | Op.R_sum -> "acc += x"
        | Op.R_prod -> "acc *= x"
        | Op.R_max -> "acc = fmaxf(acc, x)"
        | Op.R_min -> "acc = fminf(acc, x)"
        | Op.R_any -> "acc = acc || (x != 0.f)"
      in
      if is_input then
        Printf.sprintf
          "float %s = block_reduce(row, [](float acc, float x){ %s; }) /* dims=[%s] */;"
          (vname i.id) comb
          (String.concat "," (List.map string_of_int dims))
      else Printf.sprintf "float %s = warp_reduce(%s);" (vname i.id) (a 0)
  | Op.Dot | Op.Conv2d _ -> Printf.sprintf "/* %s: library call, not emitted */" (vname i.id)
  | Op.Gather ->
      Printf.sprintf "float %s = %s[(int)%s * row_stride + tail_idx];" (vname i.id) (a 0) (a 1)
  | Op.Concat { axis } ->
      Printf.sprintf "float %s = concat_select(idx, %d /* axis */);" (vname i.id) axis
  | Op.Reduce_window { window = wh, ww; strides = sh, sw; _ } ->
      Printf.sprintf
        "float %s = window_reduce(%s, /*window*/%dx%d, /*strides*/%dx%d);" (vname i.id)
        (a 0) wh ww sh sw
  | Op.Argmax { dim } ->
      Printf.sprintf "int %s = argmax_along(%s, %d);" (vname i.id) (a 0) dim

let emit_version (buf : Buffer.t) (v : Kernel.version) =
  buf_add buf
    (Printf.sprintf
       "// version %-18s guards: %s\n" v.Kernel.tag
       (String.concat " && "
          (List.filter
             (fun s -> s <> "")
             [
               (if v.Kernel.vectorized then "innermost %% 4 == 0" else "");
               (if v.Kernel.tree_reduce then "is_pow2(row)" else "");
               (if v.Kernel.persistent then "numel <= resident_threads" else "");
             ])
       ^ if v.Kernel.vectorized || v.Kernel.tree_reduce || v.Kernel.persistent then "" else "always"))

let emit (g : Graph.t) (k : Kernel.t) : string =
  let tab = Graph.symtab g in
  let c = k.Kernel.cluster in
  let dim_slot : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let buf = Buffer.create 1024 in
  let domain = shape_numel_expr tab dim_slot c.Cluster.domain in
  buf_add buf (Printf.sprintf "// %s (%s)\n" k.Kernel.name (Cluster.kind_to_string c.Cluster.kind));
  List.iter (emit_version buf) k.Kernel.versions;
  let params =
    String.concat ", "
      (List.map (fun id -> "const float* " ^ vname id) c.Cluster.inputs
      @ List.map (fun id -> "float* out_" ^ vname id) c.Cluster.outputs
      @ [ "const int64_t* dims" ])
  in
  buf_add buf (Printf.sprintf "__global__ void %s(%s) {\n" k.Kernel.name params);
  (match c.Cluster.kind with
  | Cluster.Loop | Cluster.Single | Cluster.Horizontal ->
      buf_add buf (Printf.sprintf "  int64_t numel = %s;\n" domain);
      buf_add buf
        "  for (int64_t idx = blockIdx.x * blockDim.x + threadIdx.x;\n\
        \       idx < numel; idx += gridDim.x * blockDim.x) {\n";
      List.iter
        (fun m ->
          let i = Graph.inst g m in
          buf_add buf ("    " ^ member_stmt tab dim_slot ~is_input:false i ^ "\n"))
        c.Cluster.members;
      List.iter
        (fun o -> buf_add buf (Printf.sprintf "    out_%s[idx] = %s;\n" (vname o) (vname o)))
        c.Cluster.outputs;
      buf_add buf "  }\n"
  | Cluster.Input | Cluster.Stitch ->
      let row =
        match k.Kernel.reduce_ids with
        | rid :: _ -> (
            let i = Graph.inst g rid in
            match i.op with
            | Op.Reduce { dims; _ } ->
                let input = Graph.inst g i.args.(0) in
                shape_numel_expr tab dim_slot
                  (Array.of_list (List.map (fun d -> input.shape.(d)) dims))
            | _ -> "1")
        | [] -> "1"
      in
      buf_add buf (Printf.sprintf "  int64_t row = %s;            // reduced extent\n" row);
      buf_add buf (Printf.sprintf "  int64_t rows = (%s) / row;   // one block per row\n" domain);
      buf_add buf "  extern __shared__ float relay[]; // kStitch shared-memory relay\n";
      buf_add buf "  int64_t r = blockIdx.x;\n  if (r >= rows) return;\n";
      buf_add buf "  // stage pipeline over the row, relayed through shared memory:\n";
      List.iter
        (fun m ->
          let i = Graph.inst g m in
          buf_add buf ("  " ^ member_stmt tab dim_slot ~is_input:true i ^ "\n"))
        c.Cluster.members;
      List.iter
        (fun o ->
          buf_add buf (Printf.sprintf "  store_row(out_%s, r, %s);\n" (vname o) (vname o)))
        c.Cluster.outputs
  | Cluster.Library -> buf_add buf "  // dispatched to cuBLAS/cuDNN, no emitted body\n");
  buf_add buf "}\n";
  Buffer.contents buf

let emit_program (g : Graph.t) (plan : Cluster.plan) (config : Kernel.config) : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun c ->
      match c.Cluster.kind with
      | Cluster.Library ->
          buf_add buf
            (Printf.sprintf "// cluster %d: library call (%s)\n\n" c.Cluster.cid
               (Op.to_string (Graph.inst g (List.hd c.Cluster.members)).op))
      | _ ->
          buf_add buf (emit g (Kernel.build g config c));
          buf_add buf "\n")
    plan.Cluster.clusters;
  Buffer.contents buf
