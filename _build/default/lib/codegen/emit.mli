(** Pseudo-CUDA rendering of compiled kernels, for inspection and tests
    ([discc compile --dump kernels]).

    Shows the paper's codegen story concretely: kernel bodies
    parameterized by runtime [dims] (never shape literals), index
    remapping for broadcast/reshape/transpose, block-per-row reductions
    with shared-memory relays for kStitch, and the guarded speculative
    versions. *)

val emit : Ir.Graph.t -> Kernel.t -> string
(** Render one kernel (all versions' guards + the generic body). *)

val emit_program : Ir.Graph.t -> Fusion.Cluster.plan -> Kernel.config -> string
(** Render every non-library kernel of a plan. *)
