lib/runtime/memplan.ml: Codegen Executable Fusion Hashtbl Ir List Option Printf Symshape Tensor
