lib/runtime/profile.mli:
