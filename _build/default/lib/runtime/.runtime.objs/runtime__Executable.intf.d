lib/runtime/executable.mli: Codegen Fusion Gpusim Ir Profile Symshape Tensor
