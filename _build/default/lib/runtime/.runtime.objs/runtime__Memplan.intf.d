lib/runtime/memplan.mli: Executable Symshape
