lib/runtime/executable.ml: Codegen Fusion Gpusim Hashtbl Ir List Option Printf Profile Symshape Tensor
