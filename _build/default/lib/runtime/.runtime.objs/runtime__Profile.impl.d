lib/runtime/profile.ml: Printf
