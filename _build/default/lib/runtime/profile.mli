(** Execution profiles: simulated device time, host dispatch overhead,
    launch counts, memory traffic and peak residency. *)

type kernel_record = {
  kname : string;
  kind : string;
  version_tag : string;
  time_us : float;
  bytes : int;
  flops : float;
}

type t = {
  mutable device_us : float;
  mutable host_us : float;
  mutable launches : int;
  mutable bytes_moved : int;
  mutable peak_bytes : int;
  mutable records : kernel_record list;  (** reverse chronological *)
}

val create : unit -> t

val total_us : t -> float
(** device + host time: the per-inference latency. *)

val add :
  t ->
  kname:string ->
  kind:string ->
  version_tag:string ->
  time_us:float ->
  host_us:float ->
  bytes:int ->
  flops:float ->
  unit

val note_live_bytes : t -> int -> unit
(** Record an observed live-set size; keeps the maximum. *)

val merge : t -> t -> unit
(** [merge into p] accumulates [p] into [into] (peaks take the max). *)

val to_string : t -> string
