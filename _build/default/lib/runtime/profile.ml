(* Execution profile collected by the runtime: simulated device time,
   launch counts, traffic and peak memory. *)

type kernel_record = {
  kname : string;
  kind : string;
  version_tag : string;
  time_us : float;
  bytes : int;
  flops : float;
}

type t = {
  mutable device_us : float; (* simulated on-device time *)
  mutable host_us : float; (* host-side dispatch overhead *)
  mutable launches : int;
  mutable bytes_moved : int;
  mutable peak_bytes : int;
  mutable records : kernel_record list; (* reverse chronological *)
}

let create () =
  { device_us = 0.0; host_us = 0.0; launches = 0; bytes_moved = 0; peak_bytes = 0; records = [] }

let total_us p = p.device_us +. p.host_us

let add p ~kname ~kind ~version_tag ~time_us ~host_us ~bytes ~flops =
  p.device_us <- p.device_us +. time_us;
  p.host_us <- p.host_us +. host_us;
  p.launches <- p.launches + 1;
  p.bytes_moved <- p.bytes_moved + bytes;
  p.records <- { kname; kind; version_tag; time_us; bytes; flops } :: p.records

let note_live_bytes p live = if live > p.peak_bytes then p.peak_bytes <- live

let merge into_p p =
  into_p.device_us <- into_p.device_us +. p.device_us;
  into_p.host_us <- into_p.host_us +. p.host_us;
  into_p.launches <- into_p.launches + p.launches;
  into_p.bytes_moved <- into_p.bytes_moved + p.bytes_moved;
  into_p.peak_bytes <- max into_p.peak_bytes p.peak_bytes;
  into_p.records <- p.records @ into_p.records

let to_string p =
  Printf.sprintf "total=%.1fus (device=%.1f host=%.1f) launches=%d bytes=%.2fMB peak=%.2fMB"
    (total_us p) p.device_us p.host_us p.launches
    (float_of_int p.bytes_moved /. 1e6)
    (float_of_int p.peak_bytes /. 1e6)
