lib/workloads/queueing.mli: Trace
