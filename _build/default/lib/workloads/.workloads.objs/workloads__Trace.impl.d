lib/workloads/trace.ml: Int64 List Models
