lib/workloads/trace.mli: Models
