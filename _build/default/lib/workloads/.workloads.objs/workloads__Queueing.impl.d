lib/workloads/queueing.ml: Array Float List Trace
