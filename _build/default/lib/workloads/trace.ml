(* Deterministic shape-trace generators: the runtime shape diversity the
   evaluation exercises (the paper measures on production request traces;
   these samplers are the synthetic equivalent). *)

type rng = { mutable state : int64 }

let create_rng seed = { state = Int64.of_int (seed * 2 + 1) }

(* SplitMix64 *)
let next rng =
  rng.state <- Int64.add rng.state 0x9E3779B97F4A7C15L;
  let z = rng.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform rng lo hi =
  let span = hi - lo + 1 in
  lo + Int64.to_int (Int64.rem (Int64.logand (next rng) Int64.max_int) (Int64.of_int span))

let float01 rng = Int64.to_float (Int64.shift_right_logical (next rng) 11) /. 9007199254740992.0

(* Zipf-ish skew towards short sequences, as observed in serving traces. *)
let skewed rng lo hi =
  let u = float01 rng in
  let x = u ** 2.5 in
  lo + int_of_float (x *. float_of_int (hi - lo))

type distribution =
  | Uniform of int * int
  | Skewed of int * int (* short-biased *)
  | Bimodal of int * int (* two humps: short queries and long documents *)
  | Fixed of int

let sample rng = function
  | Uniform (lo, hi) -> uniform rng lo hi
  | Skewed (lo, hi) -> skewed rng lo hi
  | Bimodal (a, b) -> if float01 rng < 0.7 then max 1 (a + uniform rng (-4) 4) else max 1 (b + uniform rng (-16) 16)
  | Fixed v -> v

(* A stream of shape environments for a model's dynamic dims. *)
let environments ~seed (spec : (string * distribution) list) ~n =
  let rng = create_rng seed in
  List.init n (fun _ -> List.map (fun (name, dist) -> (name, sample rng dist)) spec)

(* The serving-trace mix used by the sweep/variability experiments. *)
let serving_mix (model : Models.Suite.entry) : (string * distribution) list =
  match model.Models.Suite.name with
  | "bert" -> [ ("batch", Skewed (1, 16)); ("seq", Bimodal (24, 160)) ]
  | "gpt2" -> [ ("batch", Skewed (1, 8)); ("seq", Skewed (16, 512)) ]
  | "seq2seq" ->
      [ ("batch", Skewed (1, 16)); ("src", Uniform (8, 96)); ("tgt", Uniform (6, 80)) ]
  | "t5" -> [ ("batch", Skewed (1, 16)); ("seq", Bimodal (24, 200)) ]
  | "crnn" -> [ ("batch", Fixed 16); ("width", Uniform (48, 320)) ]
  | "fastspeech" ->
      [ ("batch", Skewed (1, 4)); ("phon", Uniform (24, 128)); ("frames", Uniform (180, 1200)) ]
  | "dien" -> [ ("batch", Bimodal (64, 400)); ("hist", Skewed (5, 100)) ]
  | "vit" -> [ ("batch", Skewed (1, 16)); ("h", Uniform (64, 384)); ("w", Uniform (64, 384)) ]
  | "asr" -> [ ("batch", Skewed (1, 8)); ("frames", Uniform (100, 3000)) ]
  | _ -> List.map (fun (n, _) -> (n, Uniform (1, 64))) (List.hd model.Models.Suite.bench_dims)
