(** Discrete-event simulation of an inference server with dynamic
    batching — the serving pattern that creates dynamic shapes (batch =
    queue depth, other dims = intra-batch max). *)

type policy = {
  max_batch : int;
  max_wait_us : float;  (** max delay past the first queued request *)
}

type request = {
  arrival_us : float;
  dims : (string * int) list;  (** per-request dims, excluding batch *)
}

type outcome = {
  latencies_us : float array;  (** per served request, arrival order *)
  makespan_us : float;
  batches : int;
  mean_batch : float;
}

val batch_env : batch_dim:string -> request list -> (string * int) list
(** Shape of one formed batch: batch dim = size, others = max over
    members. @raise Invalid_argument on an empty batch. *)

val simulate :
  arrivals:request list ->
  policy:policy ->
  batch_dim:string ->
  service:((string * int) list -> float) ->
  outcome
(** Single server, one batch at a time; [service] returns the batch
    execution latency in µs (e.g. from {!Disc.Session.serve}). *)

val generate_arrivals :
  seed:int -> qps:float -> n:int -> dims:(string * Trace.distribution) list -> request list
(** Poisson arrivals with per-request dims drawn from [dims]. *)

val percentile : float array -> float -> float
