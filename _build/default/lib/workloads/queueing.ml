(* Discrete-event simulation of a single-GPU inference server with
   dynamic batching — the serving pattern that *creates* the dynamic
   shapes this whole system exists for: the batch dimension is however
   many requests were queued, and each other dimension is the max over
   the batched requests (intra-batch padding).

   The server processes one batch at a time: when it becomes free it
   takes up to [max_batch] queued requests, but never waits more than
   [max_wait_us] past the first queued request. Per-request latency =
   queue wait + batch service time (from the provided executor). *)

type policy = {
  max_batch : int;
  max_wait_us : float;
}

type request = {
  arrival_us : float;
  dims : (string * int) list; (* per-request dims, excluding the batch dim *)
}

type outcome = {
  latencies_us : float array; (* per served request, arrival order *)
  makespan_us : float;
  batches : int;
  mean_batch : float;
}

(* Shape environment of one batch: batch dim = size; others = max. *)
let batch_env ~batch_dim (reqs : request list) : (string * int) list =
  let n = List.length reqs in
  match reqs with
  | [] -> invalid_arg "batch_env: empty batch"
  | first :: _ ->
      (batch_dim, n)
      :: List.map
           (fun (name, _) ->
             (name, List.fold_left (fun acc r -> max acc (List.assoc name r.dims)) 1 reqs))
           first.dims

let simulate ~(arrivals : request list) ~(policy : policy) ~(batch_dim : string)
    ~(service : (string * int) list -> float) : outcome =
  let arrivals =
    List.sort (fun a b -> compare a.arrival_us b.arrival_us) arrivals
  in
  let latencies = Array.make (List.length arrivals) 0.0 in
  let rec loop pending idx t_free batches batched_total =
    match pending with
    | [] ->
        { latencies_us = latencies; makespan_us = t_free; batches;
          mean_batch =
            (if batches = 0 then 0.0 else float_of_int batched_total /. float_of_int batches) }
    | first :: _ ->
        (* the server starts forming a batch when it is free and at
           least one request is queued *)
        let form_start = Float.max t_free first.arrival_us in
        let deadline = form_start +. policy.max_wait_us in
        (* requests that arrive by the deadline may join, up to max_batch *)
        let rec take taken rest n =
          match rest with
          | r :: tl when n < policy.max_batch && r.arrival_us <= deadline ->
              take (r :: taken) tl (n + 1)
          | _ -> (List.rev taken, rest)
        in
        let batch, rest = take [] pending 0 in
        let last_arrival =
          List.fold_left (fun acc r -> Float.max acc r.arrival_us) 0.0 batch
        in
        (* the batch launches when full, or at the deadline, or as soon
           as its members have all arrived — whichever is earliest valid *)
        let launch =
          if List.length batch = policy.max_batch then Float.max form_start last_arrival
          else Float.max form_start (Float.min deadline (Float.max last_arrival form_start))
        in
        let env = batch_env ~batch_dim batch in
        let service_us = service env in
        let done_at = launch +. service_us in
        List.iteri
          (fun k r -> latencies.(idx + k) <- done_at -. r.arrival_us)
          batch;
        loop rest (idx + List.length batch) done_at (batches + 1)
          (batched_total + List.length batch)
  in
  loop arrivals 0 0.0 0 0

(* Poisson-ish arrival generation with per-request dims drawn from a
   distribution spec. *)
let generate_arrivals ~seed ~qps ~n ~(dims : (string * Trace.distribution) list) :
    request list =
  let rng = Trace.create_rng seed in
  let mean_gap_us = 1e6 /. qps in
  let rec go t acc k =
    if k = 0 then List.rev acc
    else
      let gap = -.mean_gap_us *. Float.log (Float.max 1e-9 (Trace.float01 rng)) in
      let t = t +. gap in
      let dims = List.map (fun (name, dist) -> (name, Trace.sample rng dist)) dims in
      go t ({ arrival_us = t; dims } :: acc) (k - 1)
  in
  go 0.0 [] n

let percentile (xs : float array) p =
  let arr = Array.copy xs in
  Array.sort compare arr;
  if Array.length arr = 0 then 0.0
  else arr.(min (Array.length arr - 1) (int_of_float (p *. float_of_int (Array.length arr))))
