(** Deterministic shape-trace generators — the synthetic stand-in for
    the production request traces the paper measures on. *)

type rng

val create_rng : int -> rng
val next : rng -> int64
val uniform : rng -> int -> int -> int
(** Inclusive range. *)

val float01 : rng -> float
val skewed : rng -> int -> int -> int
(** Short-biased sample (serving traces skew short). *)

type distribution =
  | Uniform of int * int
  | Skewed of int * int
  | Bimodal of int * int  (** short queries + long documents *)
  | Fixed of int

val sample : rng -> distribution -> int

val environments :
  seed:int -> (string * distribution) list -> n:int -> (string * int) list list
(** A deterministic stream of dynamic-dim environments. *)

val serving_mix : Models.Suite.entry -> (string * distribution) list
(** The realistic per-model shape mix used by E3/E6. *)
