type dim =
  | Static of int
  | Sym of int

type shape = dim array

let is_static = function Static _ -> true | Sym _ -> false

let shape_is_static s = Array.for_all is_static s

let static_value = function Static v -> Some v | Sym _ -> None

let concrete_exn (s : shape) : Tensor.Shape.t =
  Array.map
    (function
      | Static v -> v
      | Sym id -> Tensor.Shape.error "shape has unresolved symbol s%d" id)
    s

let of_concrete (s : Tensor.Shape.t) : shape = Array.map (fun v -> Static v) s

let rank (s : shape) = Array.length s

let dim_to_string = function
  | Static v -> string_of_int v
  | Sym id -> Printf.sprintf "s%d" id

let to_string (s : shape) =
  "[" ^ String.concat "x" (List.map dim_to_string (Array.to_list s)) ^ "]"

let pp_dim fmt d = Format.pp_print_string fmt (dim_to_string d)

let pp fmt s = Format.pp_print_string fmt (to_string s)

let numel_static (s : shape) =
  Array.fold_left
    (fun acc d -> match (acc, d) with Some a, Static v -> Some (a * v) | _ -> None)
    (Some 1) s
