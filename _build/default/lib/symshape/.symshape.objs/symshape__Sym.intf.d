lib/symshape/sym.mli: Format Tensor
