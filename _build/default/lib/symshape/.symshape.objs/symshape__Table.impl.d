lib/symshape/table.ml: Array Format Hashtbl List Obj Option Printf Queue Stdlib String Sym Tensor
