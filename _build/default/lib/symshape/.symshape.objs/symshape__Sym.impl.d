lib/symshape/sym.ml: Array Format List Printf String Tensor
