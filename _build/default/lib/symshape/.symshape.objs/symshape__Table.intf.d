lib/symshape/table.mli: Format Sym Tensor
