(** Symbolic dimensions and shapes — the paper's cross-level shape
    representation (§4).

    A dimension is either a compile-time constant ([Static]) or an opaque
    symbol ([Sym id]) whose relationships to other symbols live in a
    {!Table.t}. Symbol ids are only meaningful relative to the table that
    issued them. *)

type dim =
  | Static of int
  | Sym of int

type shape = dim array

val is_static : dim -> bool
val shape_is_static : shape -> bool

val static_value : dim -> int option

val concrete_exn : shape -> Tensor.Shape.t
(** @raise Tensor.Shape.Shape_error if any dimension is symbolic. *)

val of_concrete : Tensor.Shape.t -> shape

val rank : shape -> int

val dim_to_string : dim -> string
val to_string : shape -> string
(** E.g. ["[s0x128xs1]"]. *)

val pp_dim : Format.formatter -> dim -> unit
val pp : Format.formatter -> shape -> unit

val numel_static : shape -> int option
(** Element count if every dimension is static. *)
