(** Reference semantics for the tensor operator set.

    These are deliberately simple O(n·rank) implementations used as the
    ground truth that generated kernels and executor pipelines are tested
    against. They are not on any performance path. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

val erf : float -> float
(** Scalar error function (Abramowitz–Stegun approximation, |err| < 1.5e-7). *)

(** {1 Elementwise unary} *)

val neg : Nd.t -> Nd.t
val abs : Nd.t -> Nd.t
val exp : Nd.t -> Nd.t
val log : Nd.t -> Nd.t
val tanh : Nd.t -> Nd.t
val sqrt : Nd.t -> Nd.t
val rsqrt : Nd.t -> Nd.t
val erf_t : Nd.t -> Nd.t
val sign : Nd.t -> Nd.t
val ceil : Nd.t -> Nd.t
val floor : Nd.t -> Nd.t
val logistic : Nd.t -> Nd.t
val not_t : Nd.t -> Nd.t
val cast : Dtype.t -> Nd.t -> Nd.t

(** {1 Elementwise binary (numpy broadcasting)} *)

val add : Nd.t -> Nd.t -> Nd.t
val sub : Nd.t -> Nd.t -> Nd.t
val mul : Nd.t -> Nd.t -> Nd.t
val div : Nd.t -> Nd.t -> Nd.t
val pow : Nd.t -> Nd.t -> Nd.t
val max_t : Nd.t -> Nd.t -> Nd.t
val min_t : Nd.t -> Nd.t -> Nd.t
val rem : Nd.t -> Nd.t -> Nd.t
val and_t : Nd.t -> Nd.t -> Nd.t
val or_t : Nd.t -> Nd.t -> Nd.t
val compare : cmp -> Nd.t -> Nd.t -> Nd.t

val select : pred:Nd.t -> on_true:Nd.t -> on_false:Nd.t -> Nd.t

(** {1 Shape-manipulating and structured ops} *)

val iota : ?dtype:Dtype.t -> Shape.t -> dim:int -> Nd.t

val broadcast_in_dim : Nd.t -> out:Shape.t -> dims:int array -> Nd.t
(** HLO-style: [dims.(i)] is the output dimension input dim [i] maps to. *)

val reshape : Nd.t -> Shape.t -> Nd.t
val transpose : Nd.t -> int array -> Nd.t
val concat : Nd.t list -> axis:int -> Nd.t
val slice : Nd.t -> starts:int array -> limits:int array -> strides:int array -> Nd.t
val pad : Nd.t -> low:int array -> high:int array -> value:float -> Nd.t

type reduce_kind = R_sum | R_prod | R_max | R_min | R_any

val reduce_init : reduce_kind -> float
val reduce_combine : reduce_kind -> float -> float -> float

val reduce : reduce_kind -> Nd.t -> dims:int list -> Nd.t
(** Reduce over [dims] (removed from the result shape). *)

val matmul : Nd.t -> Nd.t -> Nd.t
(** Batched matmul [..,m,k] x [..,k,n] with broadcast batch dims. *)

val conv2d :
  Nd.t -> Nd.t -> strides:int * int -> padding:int * int -> Nd.t
(** NHWC input, [kh,kw,c,f] filter, symmetric zero padding. *)

val gather : Nd.t -> Nd.t -> Nd.t
(** [gather operand indices]: take rows of [operand] along axis 0. *)

val reduce_window :
  reduce_kind -> Nd.t -> window:int * int -> strides:int * int -> padding:int * int -> Nd.t
(** Spatial pooling over NHWC input; padding contributes the reduction
    identity. *)

val argmax : Nd.t -> dim:int -> Nd.t
(** Index (i32) of the maximum along [dim], first occurrence wins;
    [dim] is removed from the result shape. *)
