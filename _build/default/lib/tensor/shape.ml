type t = int array

exception Shape_error of string

let error fmt = Format.kasprintf (fun s -> raise (Shape_error s)) fmt

let rank (t : t) = Array.length t

let numel (t : t) = Array.fold_left ( * ) 1 t

let scalar : t = [||]

let of_list = Array.of_list

let to_list = Array.to_list

let equal (a : t) (b : t) = a = b

let to_string (t : t) =
  "[" ^ String.concat "x" (List.map string_of_int (to_list t)) ^ "]"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let validate (t : t) =
  Array.iter (fun d -> if d < 0 then error "negative dimension in %s" (to_string t)) t

(* Row-major strides: strides.(i) = product of dims after i. *)
let strides (t : t) : int array =
  let n = rank t in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * t.(i + 1)
  done;
  s

let linear_of_index (t : t) (idx : int array) =
  let s = strides t in
  let acc = ref 0 in
  for i = 0 to rank t - 1 do
    if idx.(i) < 0 || idx.(i) >= t.(i) then
      error "index %d out of bounds for dim %d of %s" idx.(i) i (to_string t);
    acc := !acc + (idx.(i) * s.(i))
  done;
  !acc

let index_of_linear (t : t) (lin : int) : int array =
  let n = rank t in
  let idx = Array.make n 0 in
  let rem = ref lin in
  let s = strides t in
  for i = 0 to n - 1 do
    idx.(i) <- !rem / s.(i);
    rem := !rem mod s.(i)
  done;
  idx

let concat_dim (a : t) (b : t) ~axis =
  if rank a <> rank b then error "concat rank mismatch %s vs %s" (to_string a) (to_string b);
  Array.mapi
    (fun i d ->
      if i = axis then d + b.(i)
      else if d <> b.(i) then
        error "concat non-axis dim mismatch %s vs %s" (to_string a) (to_string b)
      else d)
    a

let drop_dims (t : t) (dims : int list) : t =
  let keep = Array.mapi (fun i d -> (i, d)) t in
  Array.of_list
    (List.filter_map
       (fun (i, d) -> if List.mem i dims then None else Some d)
       (Array.to_list keep))

let transpose (t : t) (perm : int array) : t =
  if Array.length perm <> rank t then error "transpose perm rank mismatch";
  let seen = Array.make (rank t) false in
  Array.iter
    (fun p ->
      if p < 0 || p >= rank t || seen.(p) then error "invalid permutation";
      seen.(p) <- true)
    perm;
  Array.map (fun p -> t.(p)) perm

(* Numpy-style broadcast of two shapes, aligning trailing dims. *)
let broadcast (a : t) (b : t) : t =
  let ra = rank a and rb = rank b in
  let r = max ra rb in
  let get (s : t) rs i =
    let j = i - (r - rs) in
    if j < 0 then 1 else s.(j)
  in
  Array.init r (fun i ->
      let da = get a ra i and db = get b rb i in
      if da = db then da
      else if da = 1 then db
      else if db = 1 then da
      else error "cannot broadcast %s with %s" (to_string a) (to_string b))
