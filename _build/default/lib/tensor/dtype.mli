(** Element data types carried by tensors.

    Numerics in this reproduction are always computed in OCaml [float];
    the dtype is nevertheless tracked faithfully because it determines
    element byte-width (memory-traffic costs on the simulated device)
    and type-checking rules in the IR verifier. *)

type t =
  | F32
  | F16
  | I64
  | I32
  | I8
  | Bool

val byte_size : t -> int
(** Width of one element in bytes (f16 = 2, bool/i8 = 1, ...). *)

val to_string : t -> string

val of_string : string -> t option

val is_floating : t -> bool

val is_integer : t -> bool
(** True for the signed integer types; [false] for [Bool]. *)

val pp : Format.formatter -> t -> unit
