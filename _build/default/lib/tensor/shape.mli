(** Concrete (fully static) tensor shapes.

    A shape is an array of non-negative extents, row-major. Symbolic
    shapes — the heart of the paper — live in the [Symshape] library;
    this module is the runtime side, used once all symbols are bound. *)

type t = int array

exception Shape_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Shape_error} with a formatted message. *)

val rank : t -> int

val numel : t -> int
(** Number of elements; 1 for a scalar shape. *)

val scalar : t

val of_list : int list -> t

val to_list : t -> int list

val equal : t -> t -> bool

val to_string : t -> string
(** E.g. ["[2x3x4]"]; ["[]"] for a scalar. *)

val pp : Format.formatter -> t -> unit

val validate : t -> unit
(** @raise Shape_error on a negative extent. *)

val strides : t -> int array
(** Row-major strides in elements. *)

val linear_of_index : t -> int array -> int
(** Flatten a multi-index. @raise Shape_error when out of bounds. *)

val index_of_linear : t -> int -> int array
(** Inverse of {!linear_of_index}. *)

val concat_dim : t -> t -> axis:int -> t
(** Result shape of concatenating along [axis].
    @raise Shape_error on rank or non-axis-dim mismatch. *)

val drop_dims : t -> int list -> t
(** Remove the dimensions at the given positions (used by reduce). *)

val transpose : t -> int array -> t
(** Permute dimensions. @raise Shape_error on invalid permutation. *)

val broadcast : t -> t -> t
(** Numpy-style broadcast, aligning trailing dimensions.
    @raise Shape_error when the shapes are incompatible. *)
