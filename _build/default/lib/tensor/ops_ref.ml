(* Reference (slow, obviously-correct) semantics for the tensor op set.
   Generated kernels are tested against these implementations. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

let bool_of x = if x then 1.0 else 0.0

(* Abramowitz & Stegun 7.1.26, max abs error 1.5e-7. *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let poly =
    ((((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t)
      -. 0.284496736)
      *. t)
    +. 0.254829592)
    *. t
  in
  sign *. (1.0 -. (poly *. Float.exp (-.x *. x)))

let neg = Nd.map (fun x -> -.x)
let abs = Nd.map Float.abs
let exp = Nd.map Float.exp
let log = Nd.map Float.log
let tanh = Nd.map Float.tanh
let sqrt = Nd.map Float.sqrt
let rsqrt = Nd.map (fun x -> 1.0 /. Float.sqrt x)
let erf_t = Nd.map erf
let sign = Nd.map (fun x -> if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0)
let ceil = Nd.map Stdlib.ceil
let floor = Nd.map Stdlib.floor
let logistic = Nd.map (fun x -> 1.0 /. (1.0 +. Float.exp (-.x)))
let not_t = Nd.map_dtype Dtype.Bool (fun x -> bool_of (x = 0.0))

let cast dtype t =
  let f =
    if Dtype.is_integer dtype then Float.trunc
    else if dtype = Dtype.Bool then fun x -> bool_of (x <> 0.0)
    else fun x -> x
  in
  Nd.map_dtype dtype f t

let add = Nd.map2 ( +. )
let sub = Nd.map2 ( -. )
let mul = Nd.map2 ( *. )
let div = Nd.map2 ( /. )
let pow = Nd.map2 Float.pow
let max_t = Nd.map2 Float.max
let min_t = Nd.map2 Float.min
let rem = Nd.map2 Float.rem
let and_t = Nd.map2 ~dtype:Dtype.Bool (fun a b -> bool_of (a <> 0.0 && b <> 0.0))
let or_t = Nd.map2 ~dtype:Dtype.Bool (fun a b -> bool_of (a <> 0.0 || b <> 0.0))

let compare cmp a b =
  let f =
    match cmp with
    | Eq -> fun x y -> bool_of (x = y)
    | Ne -> fun x y -> bool_of (x <> y)
    | Lt -> fun x y -> bool_of (x < y)
    | Le -> fun x y -> bool_of (x <= y)
    | Gt -> fun x y -> bool_of (x > y)
    | Ge -> fun x y -> bool_of (x >= y)
  in
  Nd.map2 ~dtype:Dtype.Bool f a b

let select ~pred ~on_true ~on_false =
  let s = Shape.broadcast (Nd.shape pred) (Nd.shape on_true) in
  let s = Shape.broadcast s (Nd.shape on_false) in
  Nd.init ~dtype:(Nd.dtype on_true) s (fun idx ->
      let p = Nd.get_linear pred (Nd.broadcast_source_linear (Nd.shape pred) s idx) in
      if p <> 0.0 then
        Nd.get_linear on_true (Nd.broadcast_source_linear (Nd.shape on_true) s idx)
      else Nd.get_linear on_false (Nd.broadcast_source_linear (Nd.shape on_false) s idx))

let iota ?(dtype = Dtype.F32) shape ~dim =
  Nd.init ~dtype shape (fun idx -> float_of_int idx.(dim))

(* HLO-style broadcast_in_dim: [dims.(i)] is the output dimension that
   input dimension [i] maps to; all other output dims are broadcast. *)
let broadcast_in_dim t ~out ~dims =
  let in_shape = Nd.shape t in
  if Array.length dims <> Shape.rank in_shape then
    Shape.error "broadcast_in_dim: dims rank mismatch";
  Array.iteri
    (fun i d ->
      if in_shape.(i) <> out.(d) && in_shape.(i) <> 1 then
        Shape.error "broadcast_in_dim: input dim %d (=%d) incompatible with out %s" i
          in_shape.(i) (Shape.to_string out))
    dims;
  Nd.init ~dtype:(Nd.dtype t) out (fun idx ->
      let src = Array.mapi (fun i d -> if in_shape.(i) = 1 then 0 else idx.(d)) dims in
      Nd.get t src)

let reshape t shape = Nd.reshape (Nd.copy t) shape

let transpose t perm =
  let in_shape = Nd.shape t in
  let out = Shape.transpose in_shape perm in
  Nd.init ~dtype:(Nd.dtype t) out (fun idx ->
      let src = Array.make (Shape.rank in_shape) 0 in
      Array.iteri (fun i p -> src.(p) <- idx.(i)) perm;
      Nd.get t src)

let concat ts ~axis =
  match ts with
  | [] -> invalid_arg "concat: empty list"
  | first :: rest ->
      let out =
        List.fold_left (fun acc t -> Shape.concat_dim acc (Nd.shape t) ~axis) (Nd.shape first) rest
      in
      let result = Nd.create ~dtype:(Nd.dtype first) out 0.0 in
      let offset = ref 0 in
      List.iter
        (fun t ->
          let s = Nd.shape t in
          let n = Nd.numel t in
          for lin = 0 to n - 1 do
            let idx = Shape.index_of_linear s lin in
            idx.(axis) <- idx.(axis) + !offset;
            Nd.set result idx (Nd.get_linear t lin)
          done;
          offset := !offset + s.(axis))
        ts;
      result

let slice t ~starts ~limits ~strides =
  let s = Nd.shape t in
  let r = Shape.rank s in
  if Array.length starts <> r || Array.length limits <> r || Array.length strides <> r
  then Shape.error "slice: rank mismatch";
  let out =
    Array.init r (fun i ->
        let extent = limits.(i) - starts.(i) in
        if extent < 0 || limits.(i) > s.(i) || starts.(i) < 0 then
          Shape.error "slice: bad bounds on dim %d" i;
        (extent + strides.(i) - 1) / strides.(i))
  in
  Nd.init ~dtype:(Nd.dtype t) out (fun idx ->
      let src = Array.mapi (fun i x -> starts.(i) + (x * strides.(i))) idx in
      Nd.get t src)

let pad t ~low ~high ~value =
  let s = Nd.shape t in
  let out = Array.mapi (fun i d -> low.(i) + d + high.(i)) s in
  Nd.init ~dtype:(Nd.dtype t) out (fun idx ->
      let src = Array.mapi (fun i x -> x - low.(i)) idx in
      let inside = ref true in
      Array.iteri (fun i x -> if x < 0 || x >= s.(i) then inside := false) src;
      if !inside then Nd.get t src else value)

type reduce_kind = R_sum | R_prod | R_max | R_min | R_any

let reduce_init = function
  | R_sum -> 0.0
  | R_prod -> 1.0
  | R_max -> Float.neg_infinity
  | R_min -> Float.infinity
  | R_any -> 0.0

let reduce_combine kind a b =
  match kind with
  | R_sum -> a +. b
  | R_prod -> a *. b
  | R_max -> Float.max a b
  | R_min -> Float.min a b
  | R_any -> bool_of (a <> 0.0 || b <> 0.0)

let reduce kind t ~dims =
  let s = Nd.shape t in
  let out = Shape.drop_dims s dims in
  let dtype = if kind = R_any then Dtype.Bool else Nd.dtype t in
  let result = Nd.create ~dtype out (reduce_init kind) in
  let n = Nd.numel t in
  for lin = 0 to n - 1 do
    let idx = Shape.index_of_linear s lin in
    let out_idx =
      Array.of_list
        (List.filteri (fun i _ -> not (List.mem i dims)) (Array.to_list idx))
    in
    let cur = Nd.get result out_idx in
    Nd.set result out_idx (reduce_combine kind cur (Nd.get_linear t lin))
  done;
  result

(* Batched matmul: [.., m, k] x [.., k, n] -> [.., m, n] with
   numpy-broadcast batch dims. *)
let matmul a b =
  let sa = Nd.shape a and sb = Nd.shape b in
  let ra = Shape.rank sa and rb = Shape.rank sb in
  if ra < 2 || rb < 2 then Shape.error "matmul: operands must have rank >= 2";
  let m = sa.(ra - 2) and k = sa.(ra - 1) in
  let k' = sb.(rb - 2) and n = sb.(rb - 1) in
  if k <> k' then
    Shape.error "matmul: contracting dims %d vs %d (%s x %s)" k k' (Shape.to_string sa)
      (Shape.to_string sb);
  let batch_a = Array.sub sa 0 (ra - 2) and batch_b = Array.sub sb 0 (rb - 2) in
  let batch = Shape.broadcast batch_a batch_b in
  let out = Array.append batch [| m; n |] in
  Nd.init ~dtype:(Nd.dtype a) out (fun idx ->
      let rb_out = Array.length batch in
      let bidx = Array.sub idx 0 rb_out in
      let i = idx.(rb_out) and j = idx.(rb_out + 1) in
      let lin_a kk =
        let full = Array.append bidx [| i; kk |] in
        Nd.broadcast_source_linear sa (Array.append batch [| m; k |]) full
      in
      let lin_b kk =
        let full = Array.append bidx [| kk; j |] in
        Nd.broadcast_source_linear sb (Array.append batch [| k; n |]) full
      in
      let acc = ref 0.0 in
      for kk = 0 to k - 1 do
        acc := !acc +. (Nd.get_linear a (lin_a kk) *. Nd.get_linear b (lin_b kk))
      done;
      !acc)

(* 2D convolution, NHWC x [kh, kw, c, f] -> NHWC, stride + symmetric
   zero padding. *)
let conv2d input filter ~strides:(sh, sw) ~padding:(ph, pw) =
  let si = Nd.shape input and sf = Nd.shape filter in
  if Shape.rank si <> 4 || Shape.rank sf <> 4 then Shape.error "conv2d: rank must be 4";
  let n = si.(0) and h = si.(1) and w = si.(2) and c = si.(3) in
  let kh = sf.(0) and kw = sf.(1) and fc = sf.(2) and f = sf.(3) in
  if c <> fc then Shape.error "conv2d: channel mismatch %d vs %d" c fc;
  let oh = ((h + (2 * ph) - kh) / sh) + 1 in
  let ow = ((w + (2 * pw) - kw) / sw) + 1 in
  Nd.init ~dtype:(Nd.dtype input) [| n; oh; ow; f |] (fun idx ->
      let b = idx.(0) and oy = idx.(1) and ox = idx.(2) and oc = idx.(3) in
      let acc = ref 0.0 in
      for ky = 0 to kh - 1 do
        for kx = 0 to kw - 1 do
          let iy = (oy * sh) + ky - ph and ix = (ox * sw) + kx - pw in
          if iy >= 0 && iy < h && ix >= 0 && ix < w then
            for ic = 0 to c - 1 do
              acc :=
                !acc
                +. (Nd.get input [| b; iy; ix; ic |] *. Nd.get filter [| ky; kx; ic; oc |])
            done
        done
      done;
      !acc)

(* Gather rows along axis 0: out[i.., j..] = operand[indices[i..], j..]. *)
let gather operand indices =
  let so = Nd.shape operand and si = Nd.shape indices in
  let tail = Array.sub so 1 (Shape.rank so - 1) in
  let out = Array.append si tail in
  Nd.init ~dtype:(Nd.dtype operand) out (fun idx ->
      let ri = Shape.rank si in
      let iidx = Array.sub idx 0 ri in
      let row = int_of_float (Nd.get indices iidx) in
      if row < 0 || row >= so.(0) then Shape.error "gather: index %d out of range" row;
      let src = Array.append [| row |] (Array.sub idx ri (Array.length idx - ri)) in
      Nd.get operand src)

(* Spatial window reduction (pooling), NHWC, symmetric zero/neutral
   padding. For max-pooling the padding contributes the identity
   (-inf); for sum it contributes 0. *)
let reduce_window kind t ~window:(wh, ww) ~strides:(sh, sw) ~padding:(ph, pw) =
  let s = Nd.shape t in
  if Shape.rank s <> 4 then Shape.error "reduce_window: rank 4 required";
  let n = s.(0) and h = s.(1) and w = s.(2) and c = s.(3) in
  let oh = ((h + (2 * ph) - wh) / sh) + 1 in
  let ow = ((w + (2 * pw) - ww) / sw) + 1 in
  Nd.init ~dtype:(Nd.dtype t) [| n; oh; ow; c |] (fun idx ->
      let b = idx.(0) and oy = idx.(1) and ox = idx.(2) and ch = idx.(3) in
      let acc = ref (reduce_init kind) in
      for ky = 0 to wh - 1 do
        for kx = 0 to ww - 1 do
          let iy = (oy * sh) + ky - ph and ix = (ox * sw) + kx - pw in
          if iy >= 0 && iy < h && ix >= 0 && ix < w then
            acc := reduce_combine kind !acc (Nd.get t [| b; iy; ix; ch |])
        done
      done;
      !acc)

(* Index of the maximum along [dim] (first occurrence wins); i32. *)
let argmax t ~dim =
  let s = Nd.shape t in
  let out = Shape.drop_dims s [ dim ] in
  Nd.init ~dtype:Dtype.I32 out (fun out_idx ->
      let extent = s.(dim) in
      let best = ref Float.neg_infinity and best_i = ref 0 in
      for k = 0 to extent - 1 do
        (* rebuild the full index with k inserted at [dim] *)
        let full = Array.make (Shape.rank s) 0 in
        let oi = ref 0 in
        Array.iteri
          (fun i _ ->
            if i = dim then full.(i) <- k
            else begin
              full.(i) <- out_idx.(!oi);
              incr oi
            end)
          full;
        let v = Nd.get t full in
        if v > !best then begin
          best := v;
          best_i := k
        end
      done;
      float_of_int !best_i)
