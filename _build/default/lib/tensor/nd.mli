(** Dense row-major tensors backed by [float array].

    All dtypes share the [float] representation (integers are stored as
    exact floats, booleans as 0.0/1.0); the dtype tag is retained for
    byte-accounting and IR type checking. This is the reference data
    plane used to validate generated kernels against ground truth. *)

type t

val create : ?dtype:Dtype.t -> Shape.t -> float -> t
(** Constant-filled tensor. *)

val init : ?dtype:Dtype.t -> Shape.t -> (int array -> float) -> t
(** Element at multi-index [idx] is [f idx]. *)

val of_array : ?dtype:Dtype.t -> Shape.t -> float array -> t
(** Copies [data]. @raise Shape.Shape_error on length mismatch. *)

val scalar : ?dtype:Dtype.t -> float -> t

val copy : t -> t

val shape : t -> Shape.t
val dtype : t -> Dtype.t
val numel : t -> int
val data : t -> float array
(** The live backing store (not a copy); mutate with care. *)

val byte_size : t -> int

val get : t -> int array -> float
val set : t -> int array -> float -> unit
val get_linear : t -> int -> float
val set_linear : t -> int -> float -> unit

val to_scalar : t -> float
(** @raise Shape.Shape_error if the tensor has more than one element. *)

val map : (float -> float) -> t -> t

val map_dtype : Dtype.t -> (float -> float) -> t -> t
(** [map] that also retags the result dtype (for casts/compares). *)

val broadcast_source_linear : Shape.t -> Shape.t -> int array -> int
(** [broadcast_source_linear operand out idx] is the linear offset in an
    operand of shape [operand] corresponding to index [idx] of the
    numpy-broadcast result shape [out]. *)

val map2 : ?dtype:Dtype.t -> (float -> float -> float) -> t -> t -> t
(** Elementwise with numpy broadcasting; result dtype defaults to the
    first operand's. *)

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val reshape : t -> Shape.t -> t
(** Same data, new shape. @raise Shape.Shape_error if numel differs. *)

val equal_approx : ?eps:float -> t -> t -> bool
(** Shape equality plus elementwise comparison with absolute+relative
    tolerance [eps]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
