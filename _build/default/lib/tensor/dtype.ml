type t =
  | F32
  | F16
  | I64
  | I32
  | I8
  | Bool

let byte_size = function
  | F32 -> 4
  | F16 -> 2
  | I64 -> 8
  | I32 -> 4
  | I8 -> 1
  | Bool -> 1

let to_string = function
  | F32 -> "f32"
  | F16 -> "f16"
  | I64 -> "i64"
  | I32 -> "i32"
  | I8 -> "i8"
  | Bool -> "bool"

let of_string = function
  | "f32" -> Some F32
  | "f16" -> Some F16
  | "i64" -> Some I64
  | "i32" -> Some I32
  | "i8" -> Some I8
  | "bool" -> Some Bool
  | _ -> None

let is_floating = function
  | F32 | F16 -> true
  | I64 | I32 | I8 | Bool -> false

let is_integer = function
  | I64 | I32 | I8 -> true
  | F32 | F16 | Bool -> false

let pp fmt t = Format.pp_print_string fmt (to_string t)
