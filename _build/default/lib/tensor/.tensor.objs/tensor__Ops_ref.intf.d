lib/tensor/ops_ref.mli: Dtype Nd Shape
