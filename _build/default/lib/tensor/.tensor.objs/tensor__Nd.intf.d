lib/tensor/nd.mli: Dtype Format Shape
