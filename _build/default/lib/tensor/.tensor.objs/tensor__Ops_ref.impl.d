lib/tensor/ops_ref.ml: Array Dtype Float List Nd Shape Stdlib
