lib/tensor/nd.ml: Array Dtype Float Format Option Shape
