type t = {
  shape : Shape.t;
  dtype : Dtype.t;
  data : float array; (* row-major, length = numel shape *)
}

let create ?(dtype = Dtype.F32) shape v =
  Shape.validate shape;
  { shape; dtype; data = Array.make (Shape.numel shape) v }

let init ?(dtype = Dtype.F32) shape f =
  Shape.validate shape;
  let n = Shape.numel shape in
  { shape; dtype; data = Array.init n (fun lin -> f (Shape.index_of_linear shape lin)) }

let of_array ?(dtype = Dtype.F32) shape data =
  if Array.length data <> Shape.numel shape then
    Shape.error "of_array: %d elements for shape %s" (Array.length data)
      (Shape.to_string shape);
  { shape; dtype; data = Array.copy data }

let scalar ?(dtype = Dtype.F32) v = { shape = Shape.scalar; dtype; data = [| v |] }

let copy t = { t with data = Array.copy t.data }

let shape t = t.shape
let dtype t = t.dtype
let numel t = Array.length t.data
let data t = t.data
let byte_size t = numel t * Dtype.byte_size t.dtype

let get t idx = t.data.(Shape.linear_of_index t.shape idx)
let set t idx v = t.data.(Shape.linear_of_index t.shape idx) <- v
let get_linear t lin = t.data.(lin)
let set_linear t lin v = t.data.(lin) <- v

let to_scalar t =
  if numel t <> 1 then Shape.error "to_scalar on shape %s" (Shape.to_string t.shape);
  t.data.(0)

let map f t = { t with data = Array.map f t.data }

let map_dtype dtype f t = { t with dtype; data = Array.map f t.data }

(* Index of [idx] (an index into the broadcast result shape [out]) inside
   an operand of shape [s], trailing-aligned numpy-style. *)
let broadcast_source_linear (s : Shape.t) (out : Shape.t) (idx : int array) =
  let rs = Shape.rank s and ro = Shape.rank out in
  let strides = Shape.strides s in
  let acc = ref 0 in
  for i = 0 to rs - 1 do
    let oi = idx.(ro - rs + i) in
    let si = if s.(i) = 1 then 0 else oi in
    acc := !acc + (si * strides.(i))
  done;
  !acc

let map2 ?dtype f a b =
  let out_shape = Shape.broadcast a.shape b.shape in
  let dtype = Option.value dtype ~default:a.dtype in
  init ~dtype out_shape (fun idx ->
      let va = a.data.(broadcast_source_linear a.shape out_shape idx) in
      let vb = b.data.(broadcast_source_linear b.shape out_shape idx) in
      f va vb)

let fold f acc t = Array.fold_left f acc t.data

let reshape t shape =
  if Shape.numel shape <> numel t then
    Shape.error "reshape %s -> %s changes element count" (Shape.to_string t.shape)
      (Shape.to_string shape);
  { t with shape }

let equal_approx ?(eps = 1e-6) a b =
  Shape.equal a.shape b.shape
  && Array.for_all2
       (fun x y ->
         let d = Float.abs (x -. y) in
         d <= eps +. (eps *. Float.abs y))
       a.data b.data

let pp fmt t =
  let n = numel t in
  let shown = min n 16 in
  Format.fprintf fmt "%s%s{" (Dtype.to_string t.dtype) (Shape.to_string t.shape);
  for i = 0 to shown - 1 do
    if i > 0 then Format.pp_print_string fmt ", ";
    Format.fprintf fmt "%g" t.data.(i)
  done;
  if shown < n then Format.fprintf fmt ", ...(%d)" n;
  Format.pp_print_string fmt "}"

let to_string t = Format.asprintf "%a" pp t
